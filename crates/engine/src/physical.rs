//! Physical executors for aggregate batches — the paper's optimization
//! ladders (Figures 7a and 7b) as concrete engines.
//!
//! Every executor computes the same batch results (`Vec<f64>` aligned with
//! the planned batch); they differ in data layout and loop structure. See
//! the crate docs for the mapping to the paper's measurement points.
//!
//! Each executor comes in three forms: `exec_*`, which uses the
//! process-wide [`ExecConfig::global`] (from `IFAQ_THREADS` /
//! `IFAQ_CHUNK_ROWS`; one thread when unset); `exec_*_cfg`, which shards
//! the scan across threads per an explicit [`ExecConfig`]; and the
//! `prepare_*` / `exec_*_prepared` split, where all θ-free state — the
//! merged hash views, dense key-indexed views, boxed dictionaries,
//! per-aggregate pushdown views, the resolved join, the fact trie, the
//! sorted order, and the level analysis — is built exactly once and then
//! borrowed by any number of execute calls. The one-shot forms are thin
//! wrappers over the split, so reuse is bit-identical to fresh
//! prepare+execute by construction. The [`crate::exec`] executor tree
//! composes these kernels into plan nodes — one join/view node per
//! layout owning the matching `*Prep` — and is what
//! [`crate::layout::prepare`] builds; this module stays the kernel
//! library: loops, preps, and nothing that knows about trees or
//! sources. Prepared state never captures fact
//! *value* columns (executors read those live), so iterative training
//! that rewrites a derived fact column (logistic's `__sigma`) can reuse
//! one preparation across every iteration.
//!
//! Sharding follows the [`crate::par`] model: the scan's work items —
//! fact-row chunks for most executors, top-level key groups for the trie,
//! whole aggregates for pushdown — are claimed by workers, each produces
//! a partial result, and partials merge in ascending item order, so
//! results are identical at every thread count for a fixed `chunk_rows`.
//! View building and other preprocessing stay single-threaded: they are
//! the paper's out-of-measurement setup work.

use crate::par::{run_chunked, run_chunked_sums, ExecConfig};
use crate::star::{Dim, StarDb};
use ifaq_query::plan::{DimView, Payload, ViewPlan};
use ifaq_query::Predicate;
use ifaq_storage::{Column, Dict, Value};
use std::collections::{BTreeMap, HashMap};
use std::ops::Range;

/// Resolved references binding a planned dimension view to the physical
/// dimension relation and the fact table's key column.
pub(crate) struct BoundDim<'a> {
    pub(crate) dim: &'a Dim,
    pub(crate) view: &'a DimView,
    pub(crate) fact_keys: &'a [i64],
}

pub(crate) fn bind_dims<'a>(plan: &'a ViewPlan, db: &'a StarDb) -> Vec<BoundDim<'a>> {
    plan.dims
        .iter()
        .map(|view| {
            assert_eq!(
                view.key_attrs.len(),
                1,
                "physical engines require single-attribute join keys"
            );
            let dim = db
                .dims
                .iter()
                .find(|d| d.rel.name == view.relation)
                .unwrap_or_else(|| panic!("dimension `{}` not in database", view.relation));
            let fact_keys = db
                .fact
                .column(view.key_attrs[0].as_str())
                .expect("fact join key column")
                .as_i64()
                .expect("fact join key must be integer");
            BoundDim {
                dim,
                view,
                fact_keys,
            }
        })
        .collect()
}

/// Evaluates one payload for dimension row `j`.
pub(crate) fn payload_value(dim: &Dim, payload: &Payload, j: usize) -> f64 {
    for p in &payload.filter {
        let col = dim.rel.column(p.attr.as_str()).expect("filter column");
        if !p.eval(col.get_f64(j)) {
            return 0.0;
        }
    }
    let mut v = 1.0;
    for f in &payload.factors {
        let col = dim.rel.column(f.as_str()).expect("payload factor column");
        v *= col.get_f64(j);
    }
    v
}

/// Builds the merged view of one dimension: key → payload vector.
pub(crate) fn build_merged_view(b: &BoundDim) -> HashMap<i64, Vec<f64>> {
    let keys = b
        .dim
        .rel
        .column(b.view.key_attrs[0].as_str())
        .expect("dim key column")
        .as_i64()
        .expect("dim key must be integer");
    let mut out: HashMap<i64, Vec<f64>> = HashMap::with_capacity(keys.len());
    for (j, &k) in keys.iter().enumerate() {
        let entry = out
            .entry(k)
            .or_insert_with(|| vec![0.0; b.view.payloads.len()]);
        for (pi, p) in b.view.payloads.iter().enumerate() {
            entry[pi] += payload_value(b.dim, p, j);
        }
    }
    out
}

/// Builds the merged view of every dimension — the dimension-side half
/// of the trie state, split out so `exec` nodes can cache it separately
/// from the fact-derived trie.
pub(crate) fn build_merged_views(plan: &ViewPlan, db: &StarDb) -> Vec<HashMap<i64, Vec<f64>>> {
    bind_dims(plan, db).iter().map(build_merged_view).collect()
}

/// Per-row fact factor product with δ filters, shared by all executors.
#[derive(Clone)]
pub(crate) struct FactAccess<'a> {
    factor_cols: Vec<&'a Column>,
    filter_cols: Vec<(&'a Column, &'a Predicate)>,
}

impl<'a> FactAccess<'a> {
    pub(crate) fn bind(plan: &'a ViewPlan, db: &'a StarDb) -> Vec<FactAccess<'a>> {
        plan.terms
            .iter()
            .map(|t| FactAccess {
                factor_cols: t
                    .fact_factors
                    .iter()
                    .map(|f| db.fact.column(f.as_str()).expect("fact factor column"))
                    .collect(),
                filter_cols: t
                    .fact_filter
                    .iter()
                    .map(|p| {
                        (
                            db.fact.column(p.attr.as_str()).expect("fact filter column"),
                            p,
                        )
                    })
                    .collect(),
            })
            .collect()
    }

    #[inline]
    pub(crate) fn eval(&self, i: usize) -> f64 {
        for (col, p) in &self.filter_cols {
            if !p.eval(col.get_f64(i)) {
                return 0.0;
            }
        }
        let mut v = 1.0;
        for c in &self.factor_cols {
            v *= c.get_f64(i);
        }
        v
    }
}

/// Terms sharing an identical fact-local program (same factors and
/// filters) evaluate it once per row. In wide covar batches most
/// aggregates touch only dimension attributes, so their fact-local value
/// is the constant 1 — deduplication shrinks per-row work dramatically.
pub(crate) fn signature_map(plan: &ViewPlan) -> (Vec<usize>, Vec<usize>) {
    // Returns (term → signature index, representative term per signature).
    let mut sig_of = Vec::with_capacity(plan.terms.len());
    let mut reps: Vec<usize> = Vec::new();
    for (t, term) in plan.terms.iter().enumerate() {
        let found = reps.iter().position(|&r| {
            plan.terms[r].fact_factors == term.fact_factors
                && plan.terms[r].fact_filter == term.fact_filter
        });
        match found {
            Some(s) => sig_of.push(s),
            None => {
                reps.push(t);
                sig_of.push(reps.len() - 1);
            }
        }
    }
    (sig_of, reps)
}

/// Baseline: materialize the join, then aggregate over the dense matrix.
pub fn exec_materialized(plan: &ViewPlan, db: &StarDb) -> Vec<f64> {
    exec_materialized_cfg(plan, db, ExecConfig::global())
}

/// [`exec_materialized`] with a sharded aggregate scan (materialization
/// itself stays single-threaded, as in the conventional pipeline).
pub fn exec_materialized_cfg(plan: &ViewPlan, db: &StarDb, cfg: &ExecConfig) -> Vec<f64> {
    exec_materialized_prepared(plan, db, &prepare_materialized(db), cfg)
}

/// θ-free prepared state for the materialized baseline: the resolved
/// project-join row structure ([`crate::star::JoinIndex`]). The index
/// reads only join keys, so it survives fact *value* mutations (e.g. the
/// per-iteration `__sigma` rewrite in logistic training); execute
/// re-gathers current values through it without any hashing.
#[derive(Clone, Debug)]
pub struct MatPrep {
    index: crate::star::JoinIndex,
}

/// Resolves the join once (hash lookups happen only here).
pub fn prepare_materialized(db: &StarDb) -> MatPrep {
    MatPrep {
        index: db.join_index(),
    }
}

/// [`exec_materialized_cfg`] over a prebuilt [`MatPrep`]: gathers the
/// dense matrix from the current column values (bit-identical to
/// [`StarDb::materialize`]) and aggregates over it.
pub fn exec_materialized_prepared(
    plan: &ViewPlan,
    db: &StarDb,
    prep: &MatPrep,
    cfg: &ExecConfig,
) -> Vec<f64> {
    let m = db.materialize_via(&prep.index);
    batch_over_matrix_cfg(&m, plan, cfg)
}

/// Computes the batch over an already-materialized training matrix. Also
/// used by the baseline (scikit-like) learners.
pub fn batch_over_matrix(m: &crate::star::TrainMatrix, plan: &ViewPlan) -> Vec<f64> {
    batch_over_matrix_cfg(m, plan, ExecConfig::global())
}

/// [`batch_over_matrix`] sharded across matrix row chunks.
pub fn batch_over_matrix_cfg(
    m: &crate::star::TrainMatrix,
    plan: &ViewPlan,
    cfg: &ExecConfig,
) -> Vec<f64> {
    // Resolve every factor/filter to a matrix column; a term's factors are
    // the union of its fact factors and its dimensions' payload factors.
    struct Cols {
        factors: Vec<usize>,
        filters: Vec<(usize, Predicate)>,
    }
    let cols: Vec<Cols> = plan
        .terms
        .iter()
        .map(|t| {
            let mut factors: Vec<usize> = t
                .fact_factors
                .iter()
                .map(|f| m.col(f.as_str()).expect("matrix column"))
                .collect();
            let mut filters: Vec<(usize, Predicate)> = t
                .fact_filter
                .iter()
                .map(|p| (m.col(p.attr.as_str()).expect("matrix column"), p.clone()))
                .collect();
            for (di, &pi) in t.dim_payload.iter().enumerate() {
                let payload = &plan.dims[di].payloads[pi];
                for f in &payload.factors {
                    factors.push(m.col(f.as_str()).expect("matrix column"));
                }
                for p in &payload.filter {
                    filters.push((m.col(p.attr.as_str()).expect("matrix column"), p.clone()));
                }
            }
            Cols { factors, filters }
        })
        .collect();
    let nterms = plan.terms.len();
    run_chunked_sums(cfg, m.rows, nterms, |range: Range<usize>| {
        let mut results = vec![0.0; nterms];
        for i in range {
            let row = m.row(i);
            'term: for (t, c) in cols.iter().enumerate() {
                for (ci, p) in &c.filters {
                    if !p.eval(row[*ci]) {
                        continue 'term;
                    }
                }
                let mut v = 1.0;
                for &ci in &c.factors {
                    v *= row[ci];
                }
                results[t] += v;
            }
        }
        results
    })
}

/// Fig. 7a "Pushed Down Aggregates": one view set *per aggregate*, so each
/// dimension is scanned once per aggregate and the fact table is scanned
/// once per aggregate.
pub fn exec_pushdown(plan: &ViewPlan, db: &StarDb) -> Vec<f64> {
    exec_pushdown_cfg(plan, db, ExecConfig::global())
}

/// [`exec_pushdown`] sharded across *aggregates* rather than rows: every
/// term's fact scan is already an independent unit of work (the repeated
/// per-aggregate scans are the point of this rung), so each worker
/// computes whole terms — one thread scope for the batch, and since a
/// term is never split its result is the plain sequential accumulation,
/// identical for any thread count *and* any `chunk_rows`.
///
/// As a wrapper over the split, this one-shot form builds the whole
/// [`PushdownPrep`] up front (single-threaded, all term view sets
/// resident — see its memory note) before the sharded scan; the
/// pre-split code instead built each term's views inside its worker.
/// On wide batches over large dimensions that trade-off matters and a
/// view-sharing layout is the right tool anyway.
pub fn exec_pushdown_cfg(plan: &ViewPlan, db: &StarDb, cfg: &ExecConfig) -> Vec<f64> {
    exec_pushdown_prepared(plan, db, &prepare_pushdown(plan, db), cfg)
}

/// θ-free prepared state for the pushdown executor: one single-payload
/// view per (aggregate, dimension) pair — this rung's defining
/// duplication, built once instead of once per execute call.
///
/// Memory note: all `terms × dims` view sets are resident at once
/// (that is what caching them means), whereas the pre-split executor
/// built each term's views inside its worker and peaked at one set per
/// in-flight term. For very wide batches (a covar batch has O(f²)
/// terms) over large dimensions, prefer a view-sharing layout like
/// [`prepare_merged`] — pushdown is the ladder's deliberately redundant
/// starting rung.
#[derive(Clone, Debug)]
pub struct PushdownPrep {
    /// `views[term][dim]`: key → the term's payload at that dimension.
    pub(crate) views: Vec<Vec<HashMap<i64, f64>>>,
}

/// Builds every term's private view set.
pub fn prepare_pushdown(plan: &ViewPlan, db: &StarDb) -> PushdownPrep {
    let bounds = bind_dims(plan, db);
    let views = plan
        .terms
        .iter()
        .map(|term| {
            bounds
                .iter()
                .zip(&term.dim_payload)
                .map(|(b, &pi)| {
                    let keys = b
                        .dim
                        .rel
                        .column(b.view.key_attrs[0].as_str())
                        .expect("dim key column")
                        .as_i64()
                        .expect("dim key");
                    let payload = &b.view.payloads[pi];
                    let mut out: HashMap<i64, f64> = HashMap::with_capacity(keys.len());
                    for (j, &k) in keys.iter().enumerate() {
                        *out.entry(k).or_insert(0.0) += payload_value(b.dim, payload, j);
                    }
                    out
                })
                .collect()
        })
        .collect();
    PushdownPrep { views }
}

/// [`exec_pushdown_cfg`] over prebuilt per-aggregate views.
pub fn exec_pushdown_prepared(
    plan: &ViewPlan,
    db: &StarDb,
    prep: &PushdownPrep,
    cfg: &ExecConfig,
) -> Vec<f64> {
    let bounds = bind_dims(plan, db);
    let fact_access = FactAccess::bind(plan, db);
    let n = db.fact.len();
    let nterms = plan.terms.len();
    // One term per work item (`chunk_rows` measures fact rows, but a term
    // always scans all of them).
    let term_cfg = cfg.with_chunk_rows(1);
    run_chunked(
        &term_cfg,
        nterms,
        vec![0.0; nterms],
        |terms: Range<usize>| {
            terms
                .map(|t| {
                    let views = &prep.views[t];
                    let fa = &fact_access[t];
                    let mut acc = 0.0;
                    'row: for i in 0..n {
                        let mut v = fa.eval(i);
                        if v == 0.0 {
                            continue;
                        }
                        for (b, view) in bounds.iter().zip(views) {
                            match view.get(&b.fact_keys[i]) {
                                Some(&p) => v *= p,
                                None => continue 'row,
                            }
                        }
                        acc += v;
                    }
                    (t, acc)
                })
                .collect::<Vec<_>>()
        },
        |results, partial| {
            for (t, v) in partial {
                results[t] = v;
            }
        },
    )
}

/// Fig. 7a "Merged Views + Multi Aggregate" / Fig. 7b "Compilation to C++
/// and Mem Mgt": one merged view per dimension, one fused fact scan
/// computing every aggregate.
pub fn exec_merged(plan: &ViewPlan, db: &StarDb) -> Vec<f64> {
    exec_merged_cfg(plan, db, ExecConfig::global())
}

/// [`exec_merged`] with the fused fact scan sharded across row chunks.
pub fn exec_merged_cfg(plan: &ViewPlan, db: &StarDb, cfg: &ExecConfig) -> Vec<f64> {
    exec_merged_prepared(plan, db, &prepare_merged(plan, db), cfg)
}

/// θ-free prepared state for the merged-view executor: one merged hash
/// view per dimension (key → payload vector).
#[derive(Clone, Debug)]
pub struct MergedPrep {
    views: Vec<HashMap<i64, Vec<f64>>>,
}

/// Builds the merged view of every dimension.
pub fn prepare_merged(plan: &ViewPlan, db: &StarDb) -> MergedPrep {
    let bounds = bind_dims(plan, db);
    MergedPrep {
        views: bounds.iter().map(build_merged_view).collect(),
    }
}

/// [`exec_merged_cfg`] over prebuilt merged views.
pub fn exec_merged_prepared(
    plan: &ViewPlan,
    db: &StarDb,
    prep: &MergedPrep,
    cfg: &ExecConfig,
) -> Vec<f64> {
    let bounds = bind_dims(plan, db);
    let fact_access = FactAccess::bind(plan, db);
    let views = &prep.views;
    let n = db.fact.len();
    let nterms = plan.terms.len();
    run_chunked_sums(cfg, n, nterms, |range: Range<usize>| {
        let mut results = vec![0.0; nterms];
        let mut payload_refs: Vec<&[f64]> = Vec::with_capacity(bounds.len());
        'row: for i in range {
            payload_refs.clear();
            for (b, view) in bounds.iter().zip(views) {
                match view.get(&b.fact_keys[i]) {
                    Some(p) => payload_refs.push(p),
                    None => continue 'row,
                }
            }
            for (t, term) in plan.terms.iter().enumerate() {
                let mut v = fact_access[t].eval(i);
                if v == 0.0 {
                    continue;
                }
                for (di, &pi) in term.dim_payload.iter().enumerate() {
                    v *= payload_refs[di][pi];
                }
                results[t] += v;
            }
        }
        results
    })
}

/// Level analysis shared by the trie and sorted executors: the distinct
/// fact key *columns* (several dimensions may join on the same column,
/// e.g. Oil and Holiday both on `date`), ordered by ascending dimension
/// cardinality and split into a *hoistable prefix* — levels whose group
/// count stays well below the row count, so per-group work amortizes —
/// and a per-row *remainder*.
#[derive(Debug)]
pub(crate) struct KeyPlan {
    /// Prefix levels: (fact key column name, dims served by this level).
    pub(crate) prefix: Vec<(ifaq_ir::Sym, Vec<usize>)>,
    /// Dims looked up per row (high-cardinality keys).
    pub(crate) remainder: Vec<usize>,
    /// Representative term per signature.
    pub(crate) sig_reps: Vec<usize>,
    /// Term → row-program index. A *row program* is the per-row part of a
    /// term: its fact-local signature plus its payload choices at the
    /// per-row (remainder) dimensions. In wide covar batches most terms
    /// differ only in group-constant payloads and share a row program, so
    /// the per-row inner loop shrinks from |batch| to a few dozen entries
    /// — this is the factorized computation structure of Example 4.11.
    pub(crate) rowprog_of: Vec<usize>,
    /// Distinct row programs: (signature index, remainder payload choices
    /// parallel to `remainder`).
    pub(crate) rowprogs: Vec<(usize, Vec<usize>)>,
}

pub(crate) fn key_plan(plan: &ViewPlan, db: &StarDb) -> KeyPlan {
    key_plan_with_rows(plan, db, db.fact.len().max(1))
}

/// [`key_plan`] with the fact row count supplied explicitly instead of
/// taken from `db.fact`. The streaming path plans against a schema-only
/// database whose fact table is empty — the real row count comes from
/// the on-disk export's header — and the prefix/remainder split depends
/// on that count (the `groups ≤ rows/2` hoisting threshold), so it must
/// see the *full-table* count or the streamed level analysis would
/// diverge from the in-memory one.
pub(crate) fn key_plan_with_rows(plan: &ViewPlan, db: &StarDb, rows: usize) -> KeyPlan {
    let bounds = bind_dims(plan, db);
    let rows = rows.max(1);
    // Group dims by fact key column.
    let mut columns: Vec<(ifaq_ir::Sym, usize, Vec<usize>)> = Vec::new(); // (col, card, dims)
    for (di, b) in bounds.iter().enumerate() {
        let col = b.view.key_attrs[0].clone();
        let card = b.dim.rel.len();
        match columns.iter_mut().find(|(c, ..)| *c == col) {
            Some((_, existing_card, dims)) => {
                *existing_card = (*existing_card).min(card);
                dims.push(di);
            }
            None => columns.push((col, card, vec![di])),
        }
    }
    columns.sort_by_key(|(_, card, _)| *card);
    let mut prefix = Vec::new();
    let mut remainder = Vec::new();
    let mut groups: usize = 1;
    for (col, card, dims) in columns {
        let next = groups.saturating_mul(card.max(1));
        if next <= rows / 2 && next > 0 {
            groups = next;
            prefix.push((col, dims));
        } else {
            remainder.extend(dims);
        }
    }
    let (sig_of, sig_reps) = signature_map(plan);
    let mut rowprogs: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut rowprog_of = Vec::with_capacity(plan.terms.len());
    for (t, term) in plan.terms.iter().enumerate() {
        let rem_payloads: Vec<usize> = remainder.iter().map(|&di| term.dim_payload[di]).collect();
        let key = (sig_of[t], rem_payloads);
        match rowprogs.iter().position(|rp| *rp == key) {
            Some(i) => rowprog_of.push(i),
            None => {
                rowprogs.push(key);
                rowprog_of.push(rowprogs.len() - 1);
            }
        }
    }
    KeyPlan {
        prefix,
        remainder,
        sig_reps,
        rowprog_of,
        rowprogs,
    }
}

/// A trie over the fact table, grouped by the low-cardinality join-key
/// columns (the "Dictionary to Trie" representation, Example 4.11): one
/// level per hoistable key column, with leaves holding the row groups.
/// Build it once with [`build_fact_trie`]; the paper's setup likewise
/// assumes relations are indexed by their join attributes beforehand.
///
/// Nodes are key-ordered (`BTreeMap`) so iteration — and therefore the
/// accumulation order of every executor over the trie — is deterministic
/// run-to-run, a prerequisite for the sharded executor's reproducibility
/// guarantee.
#[derive(Debug)]
pub struct FactTrie {
    prefix_cols: Vec<ifaq_ir::Sym>,
    root: TrieNode,
}

#[derive(Debug)]
enum TrieNode {
    Leaf(Vec<u32>),
    Node(BTreeMap<i64, TrieNode>),
}

/// Builds the fact trie for `plan` over `db`.
pub fn build_fact_trie(plan: &ViewPlan, db: &StarDb) -> FactTrie {
    build_fact_trie_from(&key_plan(plan, db), db)
}

pub(crate) fn build_fact_trie_from(kp: &KeyPlan, db: &StarDb) -> FactTrie {
    let key_cols: Vec<&[i64]> = kp
        .prefix
        .iter()
        .map(|(c, _)| {
            db.fact
                .column(c.as_str())
                .expect("key column")
                .as_i64()
                .expect("int key")
        })
        .collect();
    let all: Vec<u32> = (0..db.fact.len() as u32).collect();
    fn build(rows: &[u32], level: usize, key_cols: &[&[i64]]) -> TrieNode {
        if level == key_cols.len() {
            return TrieNode::Leaf(rows.to_vec());
        }
        let keys = key_cols[level];
        let mut groups: BTreeMap<i64, Vec<u32>> = BTreeMap::new();
        for &r in rows {
            groups.entry(keys[r as usize]).or_default().push(r);
        }
        TrieNode::Node(
            groups
                .into_iter()
                .map(|(k, rs)| (k, build(&rs, level + 1, key_cols)))
                .collect(),
        )
    }
    FactTrie {
        prefix_cols: kp.prefix.iter().map(|(c, _)| c.clone()).collect(),
        root: build(&all, 0, &key_cols),
    }
}

/// Fig. 7a "Dictionary to Trie": iterate the fact trie level by level,
/// looking up the payload vectors of every dimension keyed at that level
/// *once per group* and factorizing them out of the per-row inner loop;
/// high-cardinality dimensions are looked up per row as before.
pub fn exec_trie(plan: &ViewPlan, db: &StarDb, trie: &FactTrie) -> Vec<f64> {
    exec_trie_cfg(plan, db, trie, ExecConfig::global())
}

/// [`exec_trie`] sharded across the trie's top-level key groups (the
/// shard unit is a whole subtree, so per-group hoisting is untouched;
/// groups per chunk are scaled so a chunk covers ≈ `chunk_rows` rows).
/// With no hoistable prefix the single leaf's rows are sharded directly.
/// Rebuilds the merged views and level analysis on every call; use
/// [`prepare_trie`] + [`exec_trie_prepared`] to hoist them.
pub fn exec_trie_cfg(plan: &ViewPlan, db: &StarDb, trie: &FactTrie, cfg: &ExecConfig) -> Vec<f64> {
    let bounds = bind_dims(plan, db);
    let views: Vec<HashMap<i64, Vec<f64>>> = bounds.iter().map(build_merged_view).collect();
    let kp = key_plan(plan, db);
    exec_trie_inner(plan, db, trie, &views, &kp, cfg)
}

/// θ-free prepared state for the trie executor: the fact trie, the
/// merged per-dimension views, and the level analysis, all built once.
#[derive(Debug)]
pub struct TriePrep {
    trie: FactTrie,
    views: Vec<HashMap<i64, Vec<f64>>>,
    kp: KeyPlan,
}

/// Builds the trie-executor state for `plan` over `db`.
pub fn prepare_trie(plan: &ViewPlan, db: &StarDb) -> TriePrep {
    let bounds = bind_dims(plan, db);
    let kp = key_plan(plan, db);
    TriePrep {
        trie: build_fact_trie_from(&kp, db),
        views: bounds.iter().map(build_merged_view).collect(),
        kp,
    }
}

/// [`exec_trie_cfg`] over fully prebuilt state.
pub fn exec_trie_prepared(
    plan: &ViewPlan,
    db: &StarDb,
    prep: &TriePrep,
    cfg: &ExecConfig,
) -> Vec<f64> {
    exec_trie_inner(plan, db, &prep.trie, &prep.views, &prep.kp, cfg)
}

/// [`exec_trie_prepared`] over the state's individual parts, for `exec`
/// nodes that cache the dimension views separately from the fact trie.
pub(crate) fn exec_trie_parts(
    plan: &ViewPlan,
    db: &StarDb,
    trie: &FactTrie,
    views: &[HashMap<i64, Vec<f64>>],
    kp: &KeyPlan,
    cfg: &ExecConfig,
) -> Vec<f64> {
    exec_trie_inner(plan, db, trie, views, kp, cfg)
}

fn exec_trie_inner(
    plan: &ViewPlan,
    db: &StarDb,
    trie: &FactTrie,
    views: &[HashMap<i64, Vec<f64>>],
    kp: &KeyPlan,
    cfg: &ExecConfig,
) -> Vec<f64> {
    let bounds = bind_dims(plan, db);
    let fact_access = FactAccess::bind(plan, db);
    debug_assert_eq!(
        kp.prefix.iter().map(|(c, _)| c.clone()).collect::<Vec<_>>(),
        trie.prefix_cols,
        "trie was built for a different plan"
    );
    let nterms = plan.terms.len();

    /// Accumulates one leaf's row group into `results`, with the prefix
    /// dimensions' payloads already hoisted.
    #[allow(clippy::too_many_arguments)]
    fn leaf<'a>(
        rows: &[u32],
        kp: &KeyPlan,
        bounds: &[BoundDim<'_>],
        views: &'a [HashMap<i64, Vec<f64>>],
        fact_access: &[FactAccess<'_>],
        plan: &ViewPlan,
        hoisted: &mut [Option<&'a [f64]>],
        local: &mut [f64],
        results: &mut [f64],
    ) {
        local.iter_mut().for_each(|v| *v = 0.0);
        let mut sigval = vec![0.0; kp.sig_reps.len()];
        'row: for &r in rows {
            let i = r as usize;
            // Per-row lookups for the high-cardinality dims.
            for &di in &kp.remainder {
                match views[di].get(&bounds[di].fact_keys[i]) {
                    Some(p) => hoisted[di] = Some(p),
                    None => continue 'row,
                }
            }
            // One fact-local evaluation per distinct signature…
            for (s, &rep) in kp.sig_reps.iter().enumerate() {
                sigval[s] = fact_access[rep].eval(i);
            }
            // …and one accumulation per distinct row program.
            for (rp, (sig, rem)) in kp.rowprogs.iter().enumerate() {
                let mut v = sigval[*sig];
                if v == 0.0 {
                    continue;
                }
                for (ri, &di) in kp.remainder.iter().enumerate() {
                    v *= hoisted[di].expect("set above")[rem[ri]];
                }
                local[rp] += v;
            }
        }
        // Group-constant payloads multiply once per term.
        for (t, term) in plan.terms.iter().enumerate() {
            let mut v = local[kp.rowprog_of[t]];
            if v == 0.0 {
                continue;
            }
            for (_, dims) in &kp.prefix {
                for &di in dims {
                    v *= hoisted[di].expect("prefix payload")[term.dim_payload[di]];
                }
            }
            results[t] += v;
        }
    }

    /// Hoists the payloads of the dims keyed at `level` for one child
    /// group, then walks its subtree; a missed inner join drops the whole
    /// group. Shared by the recursive walk and the top-level shards.
    #[allow(clippy::too_many_arguments)]
    fn enter_child<'a>(
        k: &i64,
        child: &TrieNode,
        level: usize,
        kp: &KeyPlan,
        bounds: &[BoundDim<'_>],
        views: &'a [HashMap<i64, Vec<f64>>],
        fact_access: &[FactAccess<'_>],
        plan: &ViewPlan,
        hoisted: &mut Vec<Option<&'a [f64]>>,
        local: &mut [f64],
        results: &mut [f64],
    ) {
        for &di in &kp.prefix[level].1 {
            match views[di].get(k) {
                Some(p) => hoisted[di] = Some(p),
                None => return, // inner join drops group
            }
        }
        walk(
            child,
            level + 1,
            kp,
            bounds,
            views,
            fact_access,
            plan,
            hoisted,
            local,
            results,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn walk<'a>(
        node: &TrieNode,
        level: usize,
        kp: &KeyPlan,
        bounds: &[BoundDim<'_>],
        views: &'a [HashMap<i64, Vec<f64>>],
        fact_access: &[FactAccess<'_>],
        plan: &ViewPlan,
        hoisted: &mut Vec<Option<&'a [f64]>>,
        local: &mut [f64],
        results: &mut [f64],
    ) {
        match node {
            TrieNode::Node(children) => {
                for (k, child) in children {
                    enter_child(
                        k,
                        child,
                        level,
                        kp,
                        bounds,
                        views,
                        fact_access,
                        plan,
                        hoisted,
                        local,
                        results,
                    );
                }
            }
            TrieNode::Leaf(rows) => leaf(
                rows,
                kp,
                bounds,
                views,
                fact_access,
                plan,
                hoisted,
                local,
                results,
            ),
        }
    }

    match &trie.root {
        // No hoistable prefix: one leaf holds every row; shard its rows.
        TrieNode::Leaf(rows) => run_chunked_sums(cfg, rows.len(), nterms, |range: Range<usize>| {
            let mut results = vec![0.0; nterms];
            let mut hoisted: Vec<Option<&[f64]>> = vec![None; bounds.len()];
            let mut local = vec![0.0; kp.rowprogs.len().max(nterms)];
            leaf(
                &rows[range],
                kp,
                &bounds,
                views,
                &fact_access,
                plan,
                &mut hoisted,
                &mut local,
                &mut results,
            );
            results
        }),
        TrieNode::Node(children) => {
            // Shard over top-level subtrees; the per-chunk group count is
            // derived from `chunk_rows` and the data alone (never from the
            // thread count), preserving the deterministic chunk layout.
            let subtrees: Vec<(&i64, &TrieNode)> = children.iter().collect();
            let total_rows = db.fact.len().max(1);
            let groups_per_chunk =
                (cfg.chunk_rows.max(1).saturating_mul(subtrees.len()) / total_rows).max(1);
            let group_cfg = cfg.with_chunk_rows(groups_per_chunk);
            run_chunked_sums(&group_cfg, subtrees.len(), nterms, |range: Range<usize>| {
                let mut results = vec![0.0; nterms];
                let mut hoisted: Vec<Option<&[f64]>> = vec![None; bounds.len()];
                let mut local = vec![0.0; kp.rowprogs.len().max(nterms)];
                for &(k, child) in &subtrees[range] {
                    enter_child(
                        k,
                        child,
                        0,
                        kp,
                        &bounds,
                        views,
                        &fact_access,
                        plan,
                        &mut hoisted,
                        &mut local,
                        &mut results,
                    );
                }
                results
            })
        }
    }
}

/// A merged view stored as a dense key-indexed array: row-major
/// `[key * width + payload]` plus a presence mask (the "Dictionary to
/// Array" layout; valid because the generators produce compact
/// non-negative integer keys).
#[derive(Clone, Debug)]
pub(crate) struct DenseView {
    pub(crate) width: usize,
    pub(crate) data: Vec<f64>,
    present: Vec<bool>,
}

impl DenseView {
    /// Base offset of `key`'s payload row, or `None` when absent.
    #[inline]
    pub(crate) fn base_of(&self, key: i64) -> Option<usize> {
        if key < 0 || key as usize >= self.present.len() || !self.present[key as usize] {
            None
        } else {
            Some(key as usize * self.width)
        }
    }
}

pub(crate) fn build_dense_view(b: &BoundDim) -> DenseView {
    let keys = b
        .dim
        .rel
        .column(b.view.key_attrs[0].as_str())
        .expect("dim key column")
        .as_i64()
        .expect("dim key");
    let max_key = keys.iter().copied().max().unwrap_or(0);
    assert!(max_key >= 0, "array layout requires non-negative keys");
    let width = b.view.payloads.len();
    let mut data = vec![0.0; (max_key as usize + 1) * width];
    let mut present = vec![false; max_key as usize + 1];
    for (j, &k) in keys.iter().enumerate() {
        present[k as usize] = true;
        for (pi, p) in b.view.payloads.iter().enumerate() {
            data[k as usize * width + pi] += payload_value(b.dim, p, j);
        }
    }
    DenseView {
        width,
        data,
        present,
    }
}

/// Fig. 7b "Dictionary to Array": merged views stored as dense
/// key-indexed arrays, removing hashing from the fact scan entirely.
pub fn exec_array(plan: &ViewPlan, db: &StarDb) -> Vec<f64> {
    exec_array_cfg(plan, db, ExecConfig::global())
}

/// [`exec_array`] with the fact scan sharded across row chunks.
pub fn exec_array_cfg(plan: &ViewPlan, db: &StarDb, cfg: &ExecConfig) -> Vec<f64> {
    exec_array_prepared(plan, db, &prepare_array(plan, db), cfg)
}

/// θ-free prepared state for the array executor: one dense key-indexed
/// view per dimension.
#[derive(Clone, Debug)]
pub struct ArrayPrep {
    views: Vec<DenseView>,
}

/// Builds the dense view of every dimension — the dimension-side half of
/// the sorted-trie state, split out so `exec` nodes can cache it
/// separately from the fact-derived sort order.
pub(crate) fn build_dense_views(plan: &ViewPlan, db: &StarDb) -> Vec<DenseView> {
    bind_dims(plan, db).iter().map(build_dense_view).collect()
}

/// Builds the dense view of every dimension.
pub fn prepare_array(plan: &ViewPlan, db: &StarDb) -> ArrayPrep {
    let bounds = bind_dims(plan, db);
    ArrayPrep {
        views: bounds.iter().map(build_dense_view).collect(),
    }
}

/// [`exec_array_cfg`] over prebuilt dense views.
pub fn exec_array_prepared(
    plan: &ViewPlan,
    db: &StarDb,
    prep: &ArrayPrep,
    cfg: &ExecConfig,
) -> Vec<f64> {
    let bounds = bind_dims(plan, db);
    let fact_access = FactAccess::bind(plan, db);
    let views = &prep.views;
    let n = db.fact.len();
    let nterms = plan.terms.len();
    run_chunked_sums(cfg, n, nterms, |range: Range<usize>| {
        let mut results = vec![0.0; nterms];
        let mut bases: Vec<usize> = vec![0; bounds.len()];
        'row: for i in range {
            for (d, (b, view)) in bounds.iter().zip(views).enumerate() {
                match view.base_of(b.fact_keys[i]) {
                    Some(base) => bases[d] = base,
                    None => continue 'row,
                }
            }
            for (t, term) in plan.terms.iter().enumerate() {
                let mut v = fact_access[t].eval(i);
                if v == 0.0 {
                    continue;
                }
                for (di, &pi) in term.dim_payload.iter().enumerate() {
                    v *= views[di].data[bases[di] + pi];
                }
                results[t] += v;
            }
        }
        results
    })
}

/// Preprocessed state for the sorted-trie executor: the fact table's row
/// order sorted lexicographically by the hoistable key-column prefix
/// (analogous to the paper's "relations are indexed by their join
/// attributes" setup).
#[derive(Debug)]
pub struct SortedStar {
    order: Vec<u32>,
    prefix_cols: Vec<ifaq_ir::Sym>,
}

/// Sorts the fact table by the plan's hoistable key columns.
pub fn build_sorted(plan: &ViewPlan, db: &StarDb) -> SortedStar {
    build_sorted_from(&key_plan(plan, db), db)
}

pub(crate) fn build_sorted_from(kp: &KeyPlan, db: &StarDb) -> SortedStar {
    let key_cols: Vec<&[i64]> = kp
        .prefix
        .iter()
        .map(|(c, _)| {
            db.fact
                .column(c.as_str())
                .expect("key column")
                .as_i64()
                .expect("int key")
        })
        .collect();
    let mut order: Vec<u32> = (0..db.fact.len() as u32).collect();
    order.sort_by(|&a, &b| {
        for col in &key_cols {
            match col[a as usize].cmp(&col[b as usize]) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        a.cmp(&b)
    });
    SortedStar {
        order,
        prefix_cols: kp.prefix.iter().map(|(c, _)| c.clone()).collect(),
    }
}

/// Fig. 7b "Sorted Trie": scan the fact table in key order. Group
/// boundaries in the sorted prefix replace per-row hashing for the
/// low-cardinality dimensions — their payloads refresh only when the key
/// prefix changes and are factorized out of the per-group inner sums —
/// while the high-cardinality dimensions use dense position-indexed view
/// arrays. This composes the array layout with trie factorization, the
/// paper's final and fastest rung.
pub fn exec_sorted(plan: &ViewPlan, db: &StarDb, sorted: &SortedStar) -> Vec<f64> {
    exec_sorted_cfg(plan, db, sorted, ExecConfig::global())
}

/// [`exec_sorted`] sharded across chunks of the sorted row order. A key
/// group straddling a chunk boundary is flushed once per chunk; the two
/// partial flushes sum to the whole-group flush (the group-constant
/// payload product distributes over the split local sums), so chunking
/// moves fp association only within the documented tolerance and stays
/// deterministic for a fixed `chunk_rows`. Rebuilds the dense views and
/// level analysis on every call; use [`prepare_sorted`] +
/// [`exec_sorted_prepared`] to hoist them.
pub fn exec_sorted_cfg(
    plan: &ViewPlan,
    db: &StarDb,
    sorted: &SortedStar,
    cfg: &ExecConfig,
) -> Vec<f64> {
    let bounds = bind_dims(plan, db);
    let kp = key_plan(plan, db);
    let views: Vec<DenseView> = bounds.iter().map(build_dense_view).collect();
    exec_sorted_inner(plan, db, sorted, &views, &kp, cfg)
}

/// θ-free prepared state for the sorted-trie executor: the sorted fact
/// order, the dense per-dimension views, and the level analysis.
#[derive(Debug)]
pub struct SortedPrep {
    sorted: SortedStar,
    views: Vec<DenseView>,
    kp: KeyPlan,
}

/// Builds the sorted-trie state for `plan` over `db`.
pub fn prepare_sorted(plan: &ViewPlan, db: &StarDb) -> SortedPrep {
    let bounds = bind_dims(plan, db);
    let views = bounds.iter().map(build_dense_view).collect();
    let kp = key_plan(plan, db);
    let sorted = build_sorted_from(&kp, db);
    SortedPrep { sorted, views, kp }
}

/// [`exec_sorted_cfg`] over fully prebuilt state.
pub fn exec_sorted_prepared(
    plan: &ViewPlan,
    db: &StarDb,
    prep: &SortedPrep,
    cfg: &ExecConfig,
) -> Vec<f64> {
    exec_sorted_inner(plan, db, &prep.sorted, &prep.views, &prep.kp, cfg)
}

/// [`exec_sorted_prepared`] over the state's individual parts, for `exec`
/// nodes that cache the dense views separately from the sort order.
pub(crate) fn exec_sorted_parts(
    plan: &ViewPlan,
    db: &StarDb,
    sorted: &SortedStar,
    views: &[DenseView],
    kp: &KeyPlan,
    cfg: &ExecConfig,
) -> Vec<f64> {
    exec_sorted_inner(plan, db, sorted, views, kp, cfg)
}

fn exec_sorted_inner(
    plan: &ViewPlan,
    db: &StarDb,
    sorted: &SortedStar,
    views: &[DenseView],
    kp: &KeyPlan,
    cfg: &ExecConfig,
) -> Vec<f64> {
    let bounds = bind_dims(plan, db);
    let fact_access = FactAccess::bind(plan, db);
    debug_assert_eq!(
        kp.prefix.iter().map(|(c, _)| c.clone()).collect::<Vec<_>>(),
        sorted.prefix_cols,
        "sorted order was built for a different plan"
    );
    let nterms = plan.terms.len();
    let prefix_key_cols: Vec<&[i64]> = kp
        .prefix
        .iter()
        .map(|(c, _)| {
            db.fact
                .column(c.as_str())
                .expect("key column")
                .as_i64()
                .expect("int key")
        })
        .collect();
    let prefix_dims: Vec<usize> = kp
        .prefix
        .iter()
        .flat_map(|(_, ds)| ds.iter().copied())
        .collect();

    run_chunked_sums(cfg, sorted.order.len(), nterms, |range: Range<usize>| {
        let mut results = vec![0.0; nterms];
        let mut local = vec![0.0; kp.rowprogs.len().max(nterms)];
        let mut sigval = vec![0.0; kp.sig_reps.len()];
        let mut current: Vec<i64> = vec![0; prefix_key_cols.len()];
        let mut bases: Vec<usize> = vec![usize::MAX; bounds.len()];
        // `current` holds no sentinel (any i64 is a legal key): `started`
        // marks whether the chunk has opened its first group yet. With no
        // hoistable prefix the whole chunk is one implicitly open group.
        let mut started = prefix_key_cols.is_empty();
        let mut group_ok = prefix_key_cols.is_empty();
        let mut group_live = prefix_key_cols.is_empty();

        let flush = |local: &mut [f64], bases: &[usize], results: &mut [f64]| {
            for (t, term) in plan.terms.iter().enumerate() {
                let mut v = local[kp.rowprog_of[t]];
                if v == 0.0 {
                    continue;
                }
                for &di in &prefix_dims {
                    v *= views[di].data[bases[di] + term.dim_payload[di]];
                }
                results[t] += v;
            }
            local.iter_mut().for_each(|v| *v = 0.0);
        };

        for &r in &sorted.order[range] {
            let i = r as usize;
            let changed = !started
                || prefix_key_cols
                    .iter()
                    .enumerate()
                    .any(|(l, col)| col[i] != current[l]);
            if changed {
                if group_live && group_ok {
                    flush(&mut local, &bases, &mut results);
                }
                started = true;
                local.iter_mut().for_each(|v| *v = 0.0);
                for (l, col) in prefix_key_cols.iter().enumerate() {
                    current[l] = col[i];
                }
                group_ok = true;
                for &di in &prefix_dims {
                    let k = bounds[di].fact_keys[i];
                    match views[di].base_of(k) {
                        Some(b) => bases[di] = b,
                        None => {
                            group_ok = false;
                            break;
                        }
                    }
                }
                group_live = true;
            }
            if !group_ok {
                continue;
            }
            // Per-row dense lookups for the high-cardinality dims.
            let mut row_ok = true;
            for &di in &kp.remainder {
                let k = bounds[di].fact_keys[i];
                match views[di].base_of(k) {
                    Some(b) => bases[di] = b,
                    None => {
                        row_ok = false;
                        break;
                    }
                }
            }
            if !row_ok {
                continue;
            }
            for (s, &rep) in kp.sig_reps.iter().enumerate() {
                sigval[s] = fact_access[rep].eval(i);
            }
            for (rp, (sig, rem)) in kp.rowprogs.iter().enumerate() {
                let mut v = sigval[*sig];
                if v == 0.0 {
                    continue;
                }
                for (ri, &di) in kp.remainder.iter().enumerate() {
                    v *= views[di].data[bases[di] + rem[ri]];
                }
                local[rp] += v;
            }
        }
        if group_live && group_ok {
            flush(&mut local, &bases, &mut results);
        }
        results
    })
}

/// Fig. 7b "Optimized Aggregates Compiled to Scala": the merged-view
/// algorithm executed over boxed values — record keys and record payloads
/// in ordered dictionaries, accumulating through the generic ring
/// operations. This models a managed-runtime implementation.
pub fn exec_boxed_records(plan: &ViewPlan, db: &StarDb) -> Vec<f64> {
    exec_boxed_records_cfg(plan, db, ExecConfig::global())
}

/// [`exec_boxed_records`] with the fact scan sharded across row chunks.
/// Each chunk accumulates boxed values and unboxes its partials at the
/// chunk boundary; ring addition on reals is `f64` addition, so the
/// chunked reduction matches the boxed one exactly.
pub fn exec_boxed_records_cfg(plan: &ViewPlan, db: &StarDb, cfg: &ExecConfig) -> Vec<f64> {
    exec_boxed_records_prepared(plan, db, &prepare_boxed_records(plan, db), cfg)
}

/// θ-free prepared state for the boxed-record executor: per-dimension
/// ordered dictionaries from boxed key records to boxed payload records.
#[derive(Clone, Debug)]
pub struct BoxedRecordsPrep {
    /// Payload field names, per payload index.
    fields: Vec<ifaq_ir::Sym>,
    views: Vec<Dict>,
}

/// Builds the boxed dictionary view of every dimension.
pub fn prepare_boxed_records(plan: &ViewPlan, db: &StarDb) -> BoxedRecordsPrep {
    let bounds = bind_dims(plan, db);
    // Payload field names, precomputed per payload index.
    let max_payloads = plan
        .dims
        .iter()
        .map(|d| d.payloads.len())
        .max()
        .unwrap_or(0);
    let fields: Vec<ifaq_ir::Sym> = (0..max_payloads)
        .map(|pi| ifaq_ir::Sym::new(format!("p{pi}")))
        .collect();
    // Views: Dict from {key_attr = k} records to records {p0 = …, p1 = …}.
    let views: Vec<Dict> = bounds
        .iter()
        .map(|b| {
            let keys = b
                .dim
                .rel
                .column(b.view.key_attrs[0].as_str())
                .expect("dim key column")
                .as_i64()
                .expect("dim key");
            let key_attr = b.view.key_attrs[0].clone();
            let mut view = Dict::new();
            for (j, &k) in keys.iter().enumerate() {
                let key = Value::record([(key_attr.clone(), Value::Int(k))]);
                let payload = Value::record(
                    b.view
                        .payloads
                        .iter()
                        .enumerate()
                        .map(|(pi, p)| {
                            (fields[pi].clone(), Value::real(payload_value(b.dim, p, j)))
                        })
                        .collect::<Vec<_>>(),
                );
                view.insert_add(key, payload).expect("payload add");
            }
            view
        })
        .collect();
    BoxedRecordsPrep { fields, views }
}

/// [`exec_boxed_records_cfg`] over prebuilt boxed views.
pub fn exec_boxed_records_prepared(
    plan: &ViewPlan,
    db: &StarDb,
    prep: &BoxedRecordsPrep,
    cfg: &ExecConfig,
) -> Vec<f64> {
    let bounds = bind_dims(plan, db);
    let fact_access = FactAccess::bind(plan, db);
    let BoxedRecordsPrep { fields, views } = prep;
    let n = db.fact.len();
    let nterms = plan.terms.len();
    run_chunked_sums(cfg, n, nterms, |range: Range<usize>| {
        let mut results: Vec<Value> = vec![Value::real(0.0); nterms];
        'row: for i in range {
            let mut payload_recs: Vec<&Value> = Vec::with_capacity(bounds.len());
            for (b, view) in bounds.iter().zip(views) {
                let key =
                    Value::record([(b.view.key_attrs[0].clone(), Value::Int(b.fact_keys[i]))]);
                match view.get(&key) {
                    Some(p) => payload_recs.push(p),
                    None => continue 'row,
                }
            }
            for (t, term) in plan.terms.iter().enumerate() {
                let mut v = Value::real(fact_access[t].eval(i));
                for (di, &pi) in term.dim_payload.iter().enumerate() {
                    let pv = payload_recs[di]
                        .get_field(&fields[pi])
                        .expect("payload field");
                    v = v.mul(&pv).expect("boxed multiply");
                }
                results[t] = results[t].add(&v).expect("boxed add");
            }
        }
        results.iter().map(|v| v.as_f64().unwrap_or(0.0)).collect()
    })
}

/// Fig. 7b "Record Removal": boxed dictionary keys remain, but the
/// single-field key records are replaced by their field (scalar
/// replacement) and payload records by flat `f64` vectors.
pub fn exec_boxed_scalars(plan: &ViewPlan, db: &StarDb) -> Vec<f64> {
    exec_boxed_scalars_cfg(plan, db, ExecConfig::global())
}

/// [`exec_boxed_scalars`] with the fact scan sharded across row chunks.
pub fn exec_boxed_scalars_cfg(plan: &ViewPlan, db: &StarDb, cfg: &ExecConfig) -> Vec<f64> {
    exec_boxed_scalars_prepared(plan, db, &prepare_boxed_scalars(plan, db), cfg)
}

/// θ-free prepared state for the record-removal executor: per-dimension
/// ordered dictionaries with boxed scalar keys and flat payload vectors.
#[derive(Clone, Debug)]
pub struct BoxedScalarsPrep {
    views: Vec<std::collections::BTreeMap<Value, Vec<f64>>>,
}

/// Builds the scalar-keyed view of every dimension.
pub fn prepare_boxed_scalars(plan: &ViewPlan, db: &StarDb) -> BoxedScalarsPrep {
    let bounds = bind_dims(plan, db);
    let views = bounds
        .iter()
        .map(|b| {
            let keys = b
                .dim
                .rel
                .column(b.view.key_attrs[0].as_str())
                .expect("dim key column")
                .as_i64()
                .expect("dim key");
            let mut view: std::collections::BTreeMap<Value, Vec<f64>> = Default::default();
            for (j, &k) in keys.iter().enumerate() {
                let entry = view
                    .entry(Value::Int(k))
                    .or_insert_with(|| vec![0.0; b.view.payloads.len()]);
                for (pi, p) in b.view.payloads.iter().enumerate() {
                    entry[pi] += payload_value(b.dim, p, j);
                }
            }
            view
        })
        .collect();
    BoxedScalarsPrep { views }
}

/// [`exec_boxed_scalars_cfg`] over prebuilt scalar-keyed views.
pub fn exec_boxed_scalars_prepared(
    plan: &ViewPlan,
    db: &StarDb,
    prep: &BoxedScalarsPrep,
    cfg: &ExecConfig,
) -> Vec<f64> {
    let bounds = bind_dims(plan, db);
    let fact_access = FactAccess::bind(plan, db);
    let views = &prep.views;
    let n = db.fact.len();
    let nterms = plan.terms.len();
    run_chunked_sums(cfg, n, nterms, |range: Range<usize>| {
        let mut results = vec![0.0; nterms];
        'row: for i in range {
            let mut payload_refs: Vec<&[f64]> = Vec::with_capacity(bounds.len());
            for (b, view) in bounds.iter().zip(views) {
                match view.get(&Value::Int(b.fact_keys[i])) {
                    Some(p) => payload_refs.push(p),
                    None => continue 'row,
                }
            }
            for (t, term) in plan.terms.iter().enumerate() {
                let mut v = fact_access[t].eval(i);
                if v == 0.0 {
                    continue;
                }
                for (di, &pi) in term.dim_payload.iter().enumerate() {
                    v *= payload_refs[di][pi];
                }
                results[t] += v;
            }
        }
        results
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::star::running_example_star;
    use ifaq_query::batch::{covar_batch, variance_batch, AggBatch, PredOp};
    use ifaq_query::{JoinTree, Predicate, ViewPlan};

    fn setup() -> (StarDb, ViewPlan, AggBatch) {
        let db = running_example_star();
        let cat = db.catalog();
        let tree = JoinTree::build(&cat, &["S", "R", "I"]).unwrap();
        let batch = covar_batch(&["city", "price"], "units");
        let plan = ViewPlan::plan(&batch, &tree, &cat).unwrap();
        (db, plan, batch)
    }

    /// Hand-computed covar entries for the running example. Join rows
    /// (units, city, price): (10,100,1.5) (5,200,1.5) (3,100,2.5)
    /// (8,200,3.5) (2,200,2.5).
    fn expected(plan: &ViewPlan, batch: &AggBatch) -> Vec<f64> {
        let rows: [(f64, f64, f64); 5] = [
            (10.0, 100.0, 1.5),
            (5.0, 200.0, 1.5),
            (3.0, 100.0, 2.5),
            (8.0, 200.0, 3.5),
            (2.0, 200.0, 2.5),
        ];
        let val = |name: &str, (u, c, p): (f64, f64, f64)| -> f64 {
            match name {
                "m_city_city" => c * c,
                "m_city_price" => c * p,
                "m_city_units" => c * u,
                "m_price_price" => p * p,
                "m_price_units" => p * u,
                "m_units_units" => u * u,
                "m_city" => c,
                "m_price" => p,
                "m_units" => u,
                "count" => 1.0,
                other => panic!("unexpected aggregate {other}"),
            }
        };
        // Term `t` computes the batch aggregate `plan.terms[t].agg`; look
        // its name up through the plan instead of assuming the batch's
        // construction order.
        plan.terms
            .iter()
            .map(|t| {
                let name = &batch.aggs[t.agg].name;
                rows.iter().map(|r| val(name, *r)).sum()
            })
            .collect()
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())),
                "term {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn materialized_matches_hand_computation() {
        let (db, plan, batch) = setup();
        assert_close(&exec_materialized(&plan, &db), &expected(&plan, &batch));
    }

    #[test]
    fn all_engines_agree() {
        let (db, plan, batch) = setup();
        let want = expected(&plan, &batch);
        assert_close(&exec_pushdown(&plan, &db), &want);
        assert_close(&exec_merged(&plan, &db), &want);
        assert_close(&exec_boxed_records(&plan, &db), &want);
        assert_close(&exec_boxed_scalars(&plan, &db), &want);
        assert_close(&exec_array(&plan, &db), &want);
        let trie = build_fact_trie(&plan, &db);
        assert_close(&exec_trie(&plan, &db, &trie), &want);
        let sorted = build_sorted(&plan, &db);
        assert_close(&exec_sorted(&plan, &db, &sorted), &want);
    }

    #[test]
    fn term_values_follow_the_plan_after_batch_reordering() {
        // Regression for the old test helper, which assumed terms appear
        // in `covar_batch` construction order: reorder the batch and check
        // every engine's terms still line up with the names recovered
        // through `plan.terms[t].agg`.
        let db = running_example_star();
        let cat = db.catalog();
        let tree = JoinTree::build(&cat, &["S", "R", "I"]).unwrap();
        let mut batch = covar_batch(&["city", "price"], "units");
        batch.aggs.reverse();
        let plan = ViewPlan::plan(&batch, &tree, &cat).unwrap();
        assert_eq!(&batch.aggs[plan.terms[0].agg].name, "count");
        let want = expected(&plan, &batch);
        // `count` leads after the reversal: 5 joined rows.
        assert_eq!(want[0], 5.0);
        assert_close(&exec_materialized(&plan, &db), &want);
        assert_close(&exec_merged(&plan, &db), &want);
        assert_close(&exec_pushdown(&plan, &db), &want);
        assert_close(&exec_array(&plan, &db), &want);
        let trie = build_fact_trie(&plan, &db);
        assert_close(&exec_trie(&plan, &db, &trie), &want);
        let sorted = build_sorted(&plan, &db);
        assert_close(&exec_sorted(&plan, &db, &sorted), &want);
    }

    #[test]
    fn sharded_execution_is_thread_count_invariant() {
        // For a fixed chunk size every executor must return bit-identical
        // results at any thread count (chunk merge order is fixed).
        type Exec<'a> = Box<dyn Fn(&ExecConfig) -> Vec<f64> + 'a>;
        let (db, plan, _) = setup();
        let trie = build_fact_trie(&plan, &db);
        let sorted = build_sorted(&plan, &db);
        for chunk in [1, 2, 1024] {
            let base = ExecConfig::with_threads(1).with_chunk_rows(chunk);
            let runs: Vec<(&str, Exec<'_>)> = vec![
                (
                    "materialized",
                    Box::new(|c| exec_materialized_cfg(&plan, &db, c)),
                ),
                ("pushdown", Box::new(|c| exec_pushdown_cfg(&plan, &db, c))),
                ("merged", Box::new(|c| exec_merged_cfg(&plan, &db, c))),
                ("array", Box::new(|c| exec_array_cfg(&plan, &db, c))),
                ("trie", Box::new(|c| exec_trie_cfg(&plan, &db, &trie, c))),
                (
                    "sorted",
                    Box::new(|c| exec_sorted_cfg(&plan, &db, &sorted, c)),
                ),
                (
                    "boxed_records",
                    Box::new(|c| exec_boxed_records_cfg(&plan, &db, c)),
                ),
                (
                    "boxed_scalars",
                    Box::new(|c| exec_boxed_scalars_cfg(&plan, &db, c)),
                ),
            ];
            for (name, run) in &runs {
                let want = run(&base);
                for threads in [2, 3, 8] {
                    let got = run(&ExecConfig::with_threads(threads).with_chunk_rows(chunk));
                    assert_eq!(want, got, "{name} at {threads} threads, chunk {chunk}");
                }
            }
        }
    }

    #[test]
    fn filtered_batch_respects_delta() {
        let (db, _, _) = setup();
        let cat = db.catalog();
        let tree = JoinTree::build(&cat, &["S", "R", "I"]).unwrap();
        // δ: price <= 2.0 — keeps rows with item 1 (price 1.5): units 10, 5.
        let delta = vec![Predicate::new("price", PredOp::Le, 2.0)];
        let batch = variance_batch("units", &delta);
        let plan = ViewPlan::plan(&batch, &tree, &cat).unwrap();
        let want = vec![100.0 + 25.0, 15.0, 2.0];
        assert_close(&exec_merged(&plan, &db), &want);
        assert_close(&exec_materialized(&plan, &db), &want);
        assert_close(&exec_pushdown(&plan, &db), &want);
        let trie = build_fact_trie(&plan, &db);
        assert_close(&exec_trie(&plan, &db, &trie), &want);
        let sorted = build_sorted(&plan, &db);
        assert_close(&exec_sorted(&plan, &db, &sorted), &want);
        assert_close(&exec_array(&plan, &db), &want);
    }

    #[test]
    fn fact_filter_on_fact_attr() {
        let (db, _, _) = setup();
        let cat = db.catalog();
        let tree = JoinTree::build(&cat, &["S", "R", "I"]).unwrap();
        let delta = vec![Predicate::new("units", PredOp::Gt, 4.0)];
        let batch = variance_batch("units", &delta);
        let plan = ViewPlan::plan(&batch, &tree, &cat).unwrap();
        // Rows with units > 4: 10, 5, 8.
        let want = vec![100.0 + 25.0 + 64.0, 23.0, 3.0];
        assert_close(&exec_merged(&plan, &db), &want);
        assert_close(&exec_sorted(&plan, &db, &build_sorted(&plan, &db)), &want);
    }

    #[test]
    fn dangling_fact_keys_are_dropped_by_every_engine() {
        let (mut db, plan, _) = setup();
        // Append a fact row with a store key that has no dimension match.
        db.fact = ifaq_storage::ColRelation::new(
            "S",
            db.fact.attrs.clone(),
            vec![
                Column::I64(vec![1, 1, 2, 3, 2, 1]),
                Column::I64(vec![1, 2, 1, 2, 2, 99]),
                Column::F64(vec![10.0, 5.0, 3.0, 8.0, 2.0, 77.0]),
            ],
        );
        let want = exec_materialized(&plan, &db);
        assert_close(&exec_merged(&plan, &db), &want);
        assert_close(&exec_pushdown(&plan, &db), &want);
        assert_close(&exec_array(&plan, &db), &want);
        let trie = build_fact_trie(&plan, &db);
        assert_close(&exec_trie(&plan, &db, &trie), &want);
        let sorted = build_sorted(&plan, &db);
        assert_close(&exec_sorted(&plan, &db, &sorted), &want);
        assert_close(&exec_boxed_records(&plan, &db), &want);
        assert_close(&exec_boxed_scalars(&plan, &db), &want);
    }

    #[test]
    fn empty_fact_table() {
        let (db, plan, _) = setup();
        let db = db.take_fact(0);
        let want = vec![0.0; plan.terms.len()];
        assert_close(&exec_merged(&plan, &db), &want);
        assert_close(&exec_materialized(&plan, &db), &want);
        let sorted = build_sorted(&plan, &db);
        assert_close(&exec_sorted(&plan, &db, &sorted), &want);
        // Parallel configs on an empty table are fine too (zero chunks).
        let cfg = ExecConfig::with_threads(4);
        assert_close(&exec_merged_cfg(&plan, &db, &cfg), &want);
    }
}
