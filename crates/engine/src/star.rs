//! Star-schema columnar databases and join materialization.
//!
//! The physical engines operate on a [`StarDb`]: one columnar fact table
//! plus dimension tables each joined on a single integer key. This is the
//! shape of both evaluation datasets (Table 1): a sales/inventory fact
//! table with item/store/date dimensions.
//!
//! [`StarDb::materialize`] computes the full project-join result as a
//! dense row-major matrix — what the scikit-learn / TensorFlow pipelines
//! must build before learning, and the input to the baseline learners.

use ifaq_ir::{Attribute, Catalog, RelSchema, ScalarType, Sym};
use ifaq_storage::{ColRelation, Column};
use std::collections::HashMap;
use std::path::Path;

/// A dimension table: a columnar relation joined to the fact table on
/// `key` (an integer attribute present in both).
#[derive(Clone, Debug)]
pub struct Dim {
    /// The dimension relation.
    pub rel: ColRelation,
    /// Join key attribute.
    pub key: Sym,
}

impl Dim {
    /// Creates a dimension.
    pub fn new(rel: ColRelation, key: impl Into<Sym>) -> Self {
        Dim {
            rel,
            key: key.into(),
        }
    }

    /// Builds a key → row-index map (unique keys assumed; later rows win).
    pub fn key_index(&self) -> HashMap<i64, usize> {
        let col = self
            .rel
            .column(self.key.as_str())
            .expect("dimension key column")
            .as_i64()
            .expect("dimension key must be an integer column");
        col.iter().enumerate().map(|(i, &k)| (k, i)).collect()
    }

    /// Non-key attribute names.
    pub fn payload_attrs(&self) -> Vec<Sym> {
        self.rel
            .attrs
            .iter()
            .filter(|a| **a != self.key)
            .cloned()
            .collect()
    }
}

/// A star-schema database: fact table plus dimensions.
#[derive(Clone, Debug)]
pub struct StarDb {
    /// Fact table.
    pub fact: ColRelation,
    /// Dimension tables.
    pub dims: Vec<Dim>,
    /// Mutation epoch: bumped by [`StarDb::bump_generation`] whenever a
    /// delta is applied to the database. `layout::Prepared` records the
    /// generation it was built at, so state prepared before a delta
    /// fails fast instead of silently executing over changed rows.
    /// Private so the only way to move it is the explicit bump; cloning
    /// preserves it (a snapshot is the same epoch).
    generation: u64,
}

/// The materialized training matrix: dense row-major `f64` data over the
/// listed attributes.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainMatrix {
    /// Column names.
    pub attrs: Vec<Sym>,
    /// Number of rows.
    pub rows: usize,
    /// Row-major data (`rows * attrs.len()` values).
    pub data: Vec<f64>,
}

impl TrainMatrix {
    /// Column index of `attr`.
    pub fn col(&self, attr: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.as_str() == attr)
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        let w = self.attrs.len();
        &self.data[i * w..(i + 1) * w]
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.data.len() * 8
    }
}

impl StarDb {
    /// Creates a star database (at generation 0).
    pub fn new(fact: ColRelation, dims: Vec<Dim>) -> Self {
        StarDb {
            fact,
            dims,
            generation: 0,
        }
    }

    /// The database's mutation epoch (see [`StarDb::bump_generation`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Advances the mutation epoch and returns the new generation.
    ///
    /// Call this after applying a delta (fact rows inserted or deleted):
    /// every [`crate::layout::Prepared`] built before the bump becomes
    /// stale and panics on use, naming both generations. Pure fact
    /// *value* rewrites of an iteration column (logistic's `__sigma`)
    /// intentionally do **not** bump — prepared state never captures
    /// fact values, so it stays valid across them (the PR 4 contract).
    pub fn bump_generation(&mut self) -> u64 {
        self.generation += 1;
        self.generation
    }

    /// A new database with the same dimensions but a different fact
    /// table — the Δ-`StarDb` view used for delta-scoped execution: a
    /// fact table holding only the Δ rows joins against the resident
    /// dimensions, so the existing executors compute exactly the Δ
    /// partial of any aggregate batch. Starts a fresh epoch
    /// (generation 0): it is a new database, not a mutation of this one.
    pub fn with_fact(&self, fact: ColRelation) -> StarDb {
        StarDb::new(fact, self.dims.clone())
    }

    /// Number of fact tuples.
    pub fn fact_rows(&self) -> usize {
        self.fact.len()
    }

    /// Total tuples across all relations (Table 1's "Tuples of Database").
    pub fn total_tuples(&self) -> usize {
        self.fact.len() + self.dims.iter().map(|d| d.rel.len()).sum::<usize>()
    }

    /// Total bytes across all relations (Table 1's "Size of Database").
    pub fn total_bytes(&self) -> usize {
        self.fact.bytes() + self.dims.iter().map(|d| d.rel.bytes()).sum::<usize>()
    }

    /// A catalog describing this database (distinct counts estimated from
    /// the data), for join-tree construction and planning.
    pub fn catalog(&self) -> Catalog {
        let mut cat = Catalog::new();
        // Distinct counts are estimated from the key range (the generators
        // use compact surrogate keys), which keeps catalog construction
        // O(n) without sorting copies of every column.
        let rel_schema = |rel: &ColRelation| -> RelSchema {
            let attrs = rel
                .attrs
                .iter()
                .zip(&rel.columns)
                .map(|(name, col)| {
                    let (ty, distinct) = match col {
                        Column::I64(v) => {
                            let min = v.iter().copied().min().unwrap_or(0);
                            let max = v.iter().copied().max().unwrap_or(0);
                            let range = (max - min + 1).max(1) as u64;
                            (ScalarType::Int, range.min(v.len().max(1) as u64))
                        }
                        Column::F64(v) => (ScalarType::Real, v.len() as u64),
                    };
                    Attribute::new(name.clone(), ty, distinct.max(1))
                })
                .collect();
            RelSchema::new(rel.name.clone(), attrs, rel.len() as u64)
        };
        cat.add_relation(rel_schema(&self.fact));
        for d in &self.dims {
            cat.add_relation(rel_schema(&d.rel));
        }
        cat
    }

    /// Restricts the fact table to its first `n` rows (scaled variants).
    /// Like [`StarDb::with_fact`], the result is a new database at
    /// generation 0.
    pub fn take_fact(&self, n: usize) -> StarDb {
        self.with_fact(self.fact.take(n))
    }

    /// Resolves the project-join's row structure: which fact rows survive
    /// the inner join and which dimension row each joins with. This is the
    /// θ-free half of materialization — it reads only the join *keys*, so
    /// it stays valid when fact or dimension value columns change (e.g.
    /// the `__sigma` column rewritten each logistic iteration) and can be
    /// built once and reused across [`StarDb::materialize_via`] calls.
    pub fn join_index(&self) -> JoinIndex {
        // Row numbers are stored as u32; fail loudly rather than let an
        // `as` cast alias rows on >4Gi-row tables.
        assert!(
            self.fact.len() <= u32::MAX as usize,
            "join_index supports at most u32::MAX fact rows (got {})",
            self.fact.len()
        );
        for d in &self.dims {
            assert!(
                d.rel.len() <= u32::MAX as usize,
                "join_index supports at most u32::MAX rows per dimension (`{}` has {})",
                d.rel.name,
                d.rel.len()
            );
        }
        let indexes: Vec<HashMap<i64, usize>> = self.dims.iter().map(Dim::key_index).collect();
        let fact_key_cols: Vec<&[i64]> = self
            .dims
            .iter()
            .map(|d| {
                self.fact
                    .column(d.key.as_str())
                    .expect("fact join key")
                    .as_i64()
                    .expect("fact join key must be integer")
            })
            .collect();
        let n = self.fact.len();
        let mut fact_rows = Vec::new();
        let mut dim_rows: Vec<Vec<u32>> = vec![Vec::new(); self.dims.len()];
        'fact: for i in 0..n {
            // Resolve all dimension rows first (inner join: skip on miss).
            let mut resolved = Vec::with_capacity(self.dims.len());
            for (d, keys) in indexes.iter().zip(&fact_key_cols) {
                match d.get(&keys[i]) {
                    Some(&j) => resolved.push(j as u32),
                    None => continue 'fact,
                }
            }
            fact_rows.push(i as u32);
            for (per_dim, j) in dim_rows.iter_mut().zip(resolved) {
                per_dim.push(j);
            }
        }
        JoinIndex {
            fact_rows,
            dim_rows,
        }
    }

    /// Materializes the project-join through a prebuilt [`JoinIndex`]: a
    /// pure gather over the current column values (no hashing), producing
    /// exactly the matrix [`StarDb::materialize`] would — all fact
    /// attributes followed by all dimension payload attributes, in the
    /// surviving fact rows' original order.
    pub fn materialize_via(&self, index: &JoinIndex) -> TrainMatrix {
        let mut attrs: Vec<Sym> = self.fact.attrs.clone();
        for d in &self.dims {
            attrs.extend(d.payload_attrs());
        }
        let width = attrs.len();
        let dim_payload_cols: Vec<Vec<&Column>> = self
            .dims
            .iter()
            .map(|d| {
                d.payload_attrs()
                    .iter()
                    .map(|a| d.rel.column(a.as_str()).expect("payload column"))
                    .collect()
            })
            .collect();
        let rows = index.fact_rows.len();
        let mut data = Vec::with_capacity(rows * width);
        for (r, &i) in index.fact_rows.iter().enumerate() {
            for c in &self.fact.columns {
                data.push(c.get_f64(i as usize));
            }
            for (cols, per_dim) in dim_payload_cols.iter().zip(&index.dim_rows) {
                let j = per_dim[r] as usize;
                for c in cols {
                    data.push(c.get_f64(j));
                }
            }
        }
        TrainMatrix { attrs, rows, data }
    }

    /// Materializes the project-join: every fact row joined (inner) with
    /// its dimension rows, producing all fact attributes followed by all
    /// dimension payload attributes as dense `f64` columns. Equivalent to
    /// [`StarDb::join_index`] + [`StarDb::materialize_via`].
    pub fn materialize(&self) -> TrainMatrix {
        self.materialize_via(&self.join_index())
    }

    /// Serializes the whole star to `dir`: one `IFAQTBL1` file per
    /// relation (named by [`ifaq_storage::export::table_file_name`]) plus
    /// a `star.manifest` recording which file is the fact table and each
    /// dimension's join key. This is the data the *generated* C++
    /// programs load — see `ifaq_codegen` — and [`StarDb::import_dir`]
    /// reads it back for round-trip checks.
    ///
    /// # Panics
    ///
    /// If two relations map to the same file name (relation names must be
    /// unique up to file-name sanitization), or if a relation or join-key
    /// name contains whitespace — the manifest is whitespace-delimited,
    /// so such a name would export fine but never re-import.
    pub fn export_dir(&self, dir: &Path) -> std::io::Result<()> {
        use ifaq_storage::export::{table_file_name, write_relation};
        std::fs::create_dir_all(dir)?;
        let no_ws = |kind: &str, name: &str| {
            assert!(
                !name.chars().any(char::is_whitespace),
                "{kind} `{name}` contains whitespace; the star.manifest format \
                 cannot represent it"
            );
        };
        let mut seen = std::collections::HashSet::new();
        let mut manifest = String::from("ifaq-star v1\n");
        let mut write = |rel: &ColRelation| -> std::io::Result<String> {
            no_ws("relation name", rel.name.as_str());
            let file = table_file_name(rel.name.as_str());
            assert!(
                seen.insert(file.clone()),
                "relation `{}` collides with another relation's file name `{file}`",
                rel.name
            );
            write_relation(rel, &dir.join(&file))?;
            Ok(file)
        };
        let fact_file = write(&self.fact)?;
        manifest.push_str(&format!("fact {fact_file} {}\n", self.fact.name));
        for d in &self.dims {
            no_ws("join key", d.key.as_str());
            let file = write(&d.rel)?;
            manifest.push_str(&format!("dim {file} {} {}\n", d.rel.name, d.key));
        }
        std::fs::write(dir.join("star.manifest"), manifest)
    }

    /// Reads a star previously written by [`StarDb::export_dir`].
    pub fn import_dir(dir: &Path) -> std::io::Result<StarDb> {
        use ifaq_storage::export::read_relation;
        let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let manifest = std::fs::read_to_string(dir.join("star.manifest"))?;
        let mut lines = manifest.lines();
        if lines.next() != Some("ifaq-star v1") {
            return Err(bad(format!(
                "{}: not an ifaq-star v1 manifest",
                dir.display()
            )));
        }
        let mut fact = None;
        let mut dims = Vec::new();
        for line in lines {
            let parts: Vec<&str> = line.split_whitespace().collect();
            match parts.as_slice() {
                ["fact", file, _name] => fact = Some(read_relation(&dir.join(file))?),
                ["dim", file, _name, key] => {
                    dims.push(Dim::new(read_relation(&dir.join(file))?, *key));
                }
                [] => {}
                other => return Err(bad(format!("bad manifest line: {other:?}"))),
            }
        }
        Ok(StarDb::new(
            fact.ok_or_else(|| bad("manifest has no fact entry".into()))?,
            dims,
        ))
    }
}

/// The resolved row structure of the project-join (see
/// [`StarDb::join_index`]): θ-free prepared state for materialization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinIndex {
    /// Fact rows that survive the inner join, ascending.
    pub fact_rows: Vec<u32>,
    /// Per dimension, the joined dimension row for each surviving fact
    /// row (parallel to `fact_rows`).
    pub dim_rows: Vec<Vec<u32>>,
}

impl JoinIndex {
    /// Number of joined rows.
    pub fn rows(&self) -> usize {
        self.fact_rows.len()
    }
}

/// Builds the running-example star database (§3.1) in columnar form:
/// `S(item, store, units)` ⋈ `R(store, city)` ⋈ `I(item, price)`.
pub fn running_example_star() -> StarDb {
    let fact = ColRelation::new(
        "S",
        vec![Sym::new("item"), Sym::new("store"), Sym::new("units")],
        vec![
            Column::I64(vec![1, 1, 2, 3, 2]),
            Column::I64(vec![1, 2, 1, 2, 2]),
            Column::F64(vec![10.0, 5.0, 3.0, 8.0, 2.0]),
        ],
    );
    let r = ColRelation::new(
        "R",
        vec![Sym::new("store"), Sym::new("city")],
        vec![Column::I64(vec![1, 2]), Column::F64(vec![100.0, 200.0])],
    );
    let i = ColRelation::new(
        "I",
        vec![Sym::new("item"), Sym::new("price")],
        vec![Column::I64(vec![1, 2, 3]), Column::F64(vec![1.5, 2.5, 3.5])],
    );
    StarDb::new(fact, vec![Dim::new(r, "store"), Dim::new(i, "item")])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn materializes_running_example() {
        let db = running_example_star();
        let m = db.materialize();
        assert_eq!(m.rows, 5);
        assert_eq!(
            m.attrs
                .iter()
                .map(|a| a.as_str().to_string())
                .collect::<Vec<_>>(),
            vec!["item", "store", "units", "city", "price"]
        );
        // Row 0: item 1, store 1, units 10, city 100, price 1.5.
        assert_eq!(m.row(0), &[1.0, 1.0, 10.0, 100.0, 1.5]);
        // Row 3: item 3, store 2, units 8, city 200, price 3.5.
        assert_eq!(m.row(3), &[3.0, 2.0, 8.0, 200.0, 3.5]);
    }

    #[test]
    fn inner_join_drops_dangling_keys() {
        let mut db = running_example_star();
        // Add a fact row referencing a store that does not exist.
        db.fact = ColRelation::new(
            "S",
            db.fact.attrs.clone(),
            vec![
                Column::I64(vec![1, 1]),
                Column::I64(vec![1, 99]),
                Column::F64(vec![10.0, 4.0]),
            ],
        );
        let m = db.materialize();
        assert_eq!(m.rows, 1);
    }

    #[test]
    fn catalog_reflects_data() {
        let db = running_example_star();
        let cat = db.catalog();
        let s = cat.relation("S").unwrap();
        assert_eq!(s.cardinality, 5);
        assert_eq!(s.attr("item").unwrap().distinct, 3);
        assert_eq!(s.attr("store").unwrap().distinct, 2);
        assert!(cat.relation("R").is_some() && cat.relation("I").is_some());
    }

    #[test]
    fn sizes_and_counts() {
        let db = running_example_star();
        assert_eq!(db.fact_rows(), 5);
        assert_eq!(db.total_tuples(), 5 + 2 + 3);
        assert_eq!(db.total_bytes(), (5 * 3 + 2 * 2 + 3 * 2) * 8);
        let m = db.materialize();
        assert_eq!(m.bytes(), 5 * 5 * 8);
    }

    #[test]
    fn join_index_gather_reproduces_materialize() {
        let db = running_example_star();
        let index = db.join_index();
        assert_eq!(index.rows(), 5);
        assert_eq!(db.materialize_via(&index), db.materialize());
    }

    #[test]
    fn join_index_survives_value_mutation() {
        // The index reads only join keys, so rewriting a value column
        // (the logistic `__sigma` pattern) must not invalidate it: the
        // gather picks up the new values.
        let mut db = running_example_star();
        let index = db.join_index();
        let units = db.fact.columns[2].as_f64_slice().unwrap().to_vec();
        db.fact.columns[2] = Column::F64(units.iter().map(|u| u * 10.0).collect());
        let m = db.materialize_via(&index);
        assert_eq!(m, db.materialize());
        assert_eq!(m.row(0)[2], 100.0);
    }

    #[test]
    fn take_fact_scales_down() {
        let db = running_example_star().take_fact(2);
        assert_eq!(db.fact_rows(), 2);
        assert_eq!(db.materialize().rows, 2);
    }

    #[test]
    fn generation_bumps_and_clones_preserve_it() {
        let mut db = running_example_star();
        assert_eq!(db.generation(), 0);
        assert_eq!(db.bump_generation(), 1);
        assert_eq!(db.bump_generation(), 2);
        // A clone is a snapshot of the same epoch…
        assert_eq!(db.clone().generation(), 2);
        // …while derived databases start a fresh epoch.
        assert_eq!(db.take_fact(2).generation(), 0);
        assert_eq!(db.with_fact(db.fact.take(1)).generation(), 0);
    }

    #[test]
    fn with_fact_is_a_delta_view() {
        // Aggregating over a Δ fact against the resident dimensions
        // yields exactly the Δ rows' contribution: materializing the
        // 2-row view gives the first two joined rows of the full join.
        let db = running_example_star();
        let delta = db.with_fact(db.fact.take(2));
        assert_eq!(delta.dims.len(), db.dims.len());
        let m = delta.materialize();
        let full = db.materialize();
        assert_eq!(m.rows, 2);
        assert_eq!(m.row(0), full.row(0));
        assert_eq!(m.row(1), full.row(1));
    }

    #[test]
    fn export_import_round_trips() {
        let db = running_example_star();
        let dir = std::env::temp_dir().join(format!("ifaq_star_rt_{}", std::process::id()));
        db.export_dir(&dir).unwrap();
        assert!(dir.join("star.manifest").exists());
        assert!(dir.join("S.ifaqtbl").exists());
        let back = StarDb::import_dir(&dir).unwrap();
        assert_eq!(back.fact, db.fact);
        assert_eq!(back.dims.len(), db.dims.len());
        for (a, b) in back.dims.iter().zip(&db.dims) {
            assert_eq!(a.rel, b.rel);
            assert_eq!(a.key, b.key);
        }
        assert_eq!(back.materialize(), db.materialize());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "contains whitespace")]
    fn export_rejects_whitespace_relation_names() {
        // The manifest is whitespace-delimited: a name with a space would
        // export fine and then never re-import, so it must fail loudly.
        let mut db = running_example_star();
        db.fact.name = Sym::new("My Sales");
        let dir = std::env::temp_dir().join(format!("ifaq_star_ws_{}", std::process::id()));
        let _ = db.export_dir(&dir);
    }

    #[test]
    fn import_rejects_foreign_manifest() {
        let dir = std::env::temp_dir().join(format!("ifaq_star_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("star.manifest"), "something else\n").unwrap();
        let err = StarDb::import_dir(&dir).unwrap_err();
        assert!(err.to_string().contains("ifaq-star"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dim_helpers() {
        let db = running_example_star();
        let r = &db.dims[0];
        assert_eq!(r.payload_attrs(), vec![Sym::new("city")]);
        let idx = r.key_index();
        assert_eq!(idx[&1], 0);
        assert_eq!(idx[&2], 1);
    }
}
