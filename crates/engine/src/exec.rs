//! The executor-trait plan-node architecture: aggregate-batch execution
//! as a tree of [`Executor`] nodes instead of a layout-tagged dispatch.
//!
//! Prior to this module, the 8 physical layouts (§4.3–4.4 of the paper)
//! lived as ~32 free functions in [`crate::physical`] behind two
//! layout-tagged `enum` dispatches — one for resident execution
//! ([`crate::layout`]), one for streaming ([`crate::stream`]) — and every
//! new capability (iterative logistic training, incremental deltas,
//! out-of-core streaming) had to re-touch all of them with another 8-way
//! `match`. This module replaces the dispatch with composition, the
//! shape polars' `physical_plan::executors` uses: plan nodes **own their
//! prepared state**, compose into a tree, and thread an
//! [`ExecutionState`] through both phases of execution.
//!
//! ## The tree
//!
//! [`build_tree`] constructs, for any [`ViewPlan`] × [`Layout`], a fixed
//! three-level tree:
//!
//! ```text
//! Aggregate[…]                 ← AggregateNode: term→aggregate mapping, fold discipline
//! └─ MergedHashViews[…]        ← one per-layout join/view node, owns all θ-free state
//!    └─ Scan[…]                ← ScanNode: fact input identity + staleness guards
//! ```
//!
//! The join/view node is one of eight concrete types — [`MaterializedNode`],
//! [`PushdownNode`], [`BoxedRecordsNode`], [`BoxedScalarsNode`],
//! [`MergedHashNode`], [`TrieNode`], [`DenseArrayNode`], [`SortedTrieNode`] —
//! each owning exactly the prepared state its layout needs (merged hash
//! views, dense arrays, the fact trie, the sorted order, …) and knowing
//! how to run its fused multi-aggregate scan over either input mode.
//! The numeric kernels themselves stay in [`crate::physical`]: a node is
//! *state + orchestration*, so resident execution calls the very same
//! `exec_*_prepared` kernels as before and every bit-identity guarantee
//! (across thread counts, across prepare reuse, across streaming) holds
//! **by construction** rather than by re-verification.
//!
//! ## prepare / execute
//!
//! [`Executor::prepare`] builds all θ-free state exactly once — views,
//! tries, sort orders, join resolution — mirroring the paper's
//! assumption that relations are pre-indexed outside the measured
//! region. [`Executor::execute`] runs only the θ-dependent scan. Fact
//! *value* columns are never captured at prepare time, so one
//! preparation stays valid across iterative training that rewrites a
//! derived fact column (logistic's `__sigma`); the θ-dependence rules
//! are the shared ones from `ifaq_ir::analysis` (the `__` iteration-
//! column convention), and [`build_tree`] rejects plans whose
//! *dimension* payloads reference iteration columns — baking those into
//! views would freeze iteration 0 forever.
//!
//! ## Input modes
//!
//! The same tree executes over two [`Source`]s:
//!
//! * [`Source::Resident`] — an in-memory [`StarDb`]; nodes run the
//!   in-memory kernels under the [`ExecConfig`] sharding discipline.
//! * [`Source::Stream`] — an on-disk [`StreamSource`]; nodes run their
//!   streaming transcription over fixed `chunk_rows` chunks (prepare
//!   against [`Source::StreamSchema`], which supplies the schema
//!   database and the on-disk row count the trie-family level analysis
//!   needs).
//!
//! Delta maintenance needs no third mode: a Δ scan *is* a resident
//! execution whose fact table happens to hold only the net delta rows
//! (see `ifaq_serve`), and the [`PrepCache`] below is what makes it
//! cheap.
//!
//! ## The prepared-subtree cache
//!
//! [`ExecutionState`] optionally carries a [`PrepCache`]: a map from a
//! **θ-free node fingerprint** (node kind + plan shape + dimension-table
//! identity — never the fact table, never θ) to the prepared state built
//! for it. Dimension-side state — every hash/dense/boxed/pushdown view —
//! depends only on the dimension tables and the plan, exactly the
//! subplans `ifaq_ir::analysis::DeltaAnalysis` classifies `Reusable`
//! under a fact-only delta; fact-derived state (the join index, the fact
//! trie, the sorted order) is rebuilt per preparation and never cached.
//! A long-lived engine (`ifaq_serve::ServeEngine`) holds one cache and
//! re-prepares per delta for the cost of a fingerprint lookup. The
//! cache contract: entries stay valid while the dimension tables are
//! unchanged — fact inserts/deletes/value rewrites are fine; editing a
//! dimension table requires a fresh cache.
//!
//! ## Example
//!
//! ```
//! use ifaq_engine::exec::{build_tree, Source};
//! use ifaq_engine::star::running_example_star;
//! use ifaq_engine::{ExecConfig, Layout};
//! use ifaq_query::{batch::covar_batch, JoinTree, ViewPlan};
//!
//! let db = running_example_star();
//! let cat = db.catalog();
//! let jt = JoinTree::build(&cat, &["S", "R", "I"]).unwrap();
//! let batch = covar_batch(&["city", "price"], "units");
//! let plan = ViewPlan::plan(&batch, &jt, &cat).unwrap();
//!
//! let mut tree = build_tree(&plan, Some(&batch), Layout::MergedHash, ExecConfig::global());
//! tree.prepare(Source::Resident(&db)).unwrap();
//! let totals = tree.execute(Source::Resident(&db)).unwrap();
//! assert_eq!(totals.len(), plan.terms.len());
//! println!("{}", tree.explain());
//! ```

use crate::layout::Layout;
use crate::par::ExecConfig;
use crate::physical;
use crate::star::StarDb;
use crate::stream::{self, StreamSource, StreamStats};
use ifaq_ir::Sym;
use ifaq_query::batch::AggBatch;
use ifaq_query::ViewPlan;
use ifaq_storage::stream::ExportError;
use ifaq_storage::ColRelation;
use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The result of executing a (sub)tree: one f64 per plan term, in term
/// order — the same vector every `exec_*` kernel has always produced.
pub type AggResults = Vec<f64>;

/// An execution error. Staleness (wrong layout/plan/generation/shape) is
/// a *panic*, not an error — executing stale state is a caller bug that
/// would silently corrupt results; only genuinely runtime-fallible paths
/// (disk I/O during streaming) surface as `Err`.
#[derive(Debug)]
pub enum ExecError {
    /// A streaming read failed (bad magic, truncation, short read, …).
    Stream(ExportError),
    /// `execute` was called on a node whose `prepare` never ran.
    Unprepared(&'static str),
    /// The node was prepared for one input mode (resident / streamed)
    /// but executed under the other.
    SourceMismatch(&'static str),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Stream(e) => write!(f, "streaming read failed: {e}"),
            ExecError::Unprepared(node) => {
                write!(f, "executor node `{node}` executed before prepare")
            }
            ExecError::SourceMismatch(node) => write!(
                f,
                "executor node `{node}` prepared for one input mode but executed under \
                 the other (resident vs streamed); re-prepare against the source being \
                 executed"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<ExportError> for ExecError {
    fn from(e: ExportError) -> Self {
        ExecError::Stream(e)
    }
}

/// The fact-side input a tree prepares against or executes over.
#[derive(Clone, Copy)]
pub enum Source<'a> {
    /// An in-memory star database: valid for both prepare and execute.
    Resident(&'a StarDb),
    /// Streaming prepare input: the schema database (dimensions
    /// resident, fact empty — possibly augmented with derived fact
    /// columns like logistic's `__sigma`) plus the on-disk fact row
    /// count the trie-family level analysis must see.
    StreamSchema {
        /// Schema database (`StreamSource::schema_db` or a derived one).
        schema: &'a StarDb,
        /// Full on-disk fact row count.
        fact_rows: usize,
    },
    /// Streaming execute input: the opened on-disk export. Also accepted
    /// at prepare time as shorthand for
    /// `StreamSchema { schema: src.schema_db(), fact_rows: src.fact_rows() }`.
    Stream(&'a StreamSource),
}

/// A prepared-subtree cache keyed by θ-free node fingerprint: shared,
/// thread-safe, and deliberately ignorant of the fact table. See the
/// [module docs](self) for the validity contract (dimension tables must
/// be unchanged for the cache's lifetime; fact deltas are fine).
#[derive(Default)]
pub struct PrepCache {
    entries: Mutex<HashMap<u64, Arc<dyn Any + Send + Sync>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl PrepCache {
    /// An empty cache.
    pub fn new() -> PrepCache {
        PrepCache::default()
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to build (and then populate) an entry.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached subtree states.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("prep cache lock").len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn get_or_build<T, F>(&self, key: u64, build: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        if let Some(hit) = self
            .entries
            .lock()
            .expect("prep cache lock")
            .get(&key)
            .and_then(|e| Arc::clone(e).downcast::<T>().ok())
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        // Build outside the lock: a racing builder wastes work but never
        // deadlocks, and both racers produce identical (deterministic)
        // state.
        let built = Arc::new(build());
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.entries
            .lock()
            .expect("prep cache lock")
            .insert(key, Arc::clone(&built) as Arc<dyn Any + Send + Sync>);
        built
    }
}

/// Per-call execution context threaded through every node of a tree:
/// the input [`Source`], the sharding [`ExecConfig`], an optional
/// [`PrepCache`], prepare-invocation accounting, and the streaming-only
/// extras (virtual columns, per-chunk transform, run stats).
pub struct ExecutionState<'a> {
    source: Source<'a>,
    cfg: ExecConfig,
    cache: Option<&'a PrepCache>,
    virtual_cols: &'a [Sym],
    map_chunk: Option<&'a mut (dyn FnMut(usize, ColRelation) -> ColRelation + 'a)>,
    stream_stats: Option<StreamStats>,
    prepares: usize,
}

impl<'a> ExecutionState<'a> {
    /// A state over `source` with the process-wide [`ExecConfig::global`].
    pub fn new(source: Source<'a>) -> ExecutionState<'a> {
        ExecutionState {
            source,
            cfg: *ExecConfig::global(),
            cache: None,
            virtual_cols: &[],
            map_chunk: None,
            stream_stats: None,
            prepares: 0,
        }
    }

    /// Overrides the sharding configuration (builder style).
    pub fn with_cfg(mut self, cfg: ExecConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Attaches a prepared-subtree cache (builder style).
    pub fn with_cache(mut self, cache: &'a PrepCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Declares derived fact columns the chunk transform appends
    /// (streaming only; excluded from the file projection).
    pub fn with_virtual_cols(mut self, cols: &'a [Sym]) -> Self {
        self.virtual_cols = cols;
        self
    }

    /// Attaches a per-chunk relation transform (streaming only), e.g.
    /// the logistic trainer's per-chunk `__sigma` computation.
    pub fn with_map_chunk(
        mut self,
        map: &'a mut (dyn FnMut(usize, ColRelation) -> ColRelation + 'a),
    ) -> Self {
        self.map_chunk = Some(map);
        self
    }

    /// The sharding configuration for this call.
    pub fn cfg(&self) -> &ExecConfig {
        &self.cfg
    }

    /// Node-prepare invocations recorded on this state so far (each node
    /// bumps it once per `prepare` call, cache hit or not).
    pub fn prepares(&self) -> usize {
        self.prepares
    }

    /// The [`StreamStats`] of the last streamed execute through this
    /// state, if one ran.
    pub fn take_stream_stats(&mut self) -> Option<StreamStats> {
        self.stream_stats.take()
    }

    fn note_prepare(&mut self) {
        self.prepares += 1;
    }

    /// Fetches (or builds) θ-free dimension-side state through the
    /// attached cache; with no cache attached, builds directly.
    fn dim_state<T, F>(&self, key: u64, build: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        match self.cache {
            Some(c) => c.get_or_build(key, build),
            None => Arc::new(build()),
        }
    }

    /// Runs `f` with the streaming extras (config, virtual columns, and
    /// the chunk transform or an identity fallback).
    fn with_stream_parts<R>(
        &mut self,
        f: impl FnOnce(
            &ExecConfig,
            &[Sym],
            &mut (dyn FnMut(usize, ColRelation) -> ColRelation + '_),
        ) -> R,
    ) -> R {
        let mut ident = |_start: usize, rel: ColRelation| rel;
        match self.map_chunk.as_deref_mut() {
            Some(m) => f(&self.cfg, self.virtual_cols, m),
            None => f(&self.cfg, self.virtual_cols, &mut ident),
        }
    }
}

/// Fingerprint of a node's θ-free, *fact-free* inputs: node kind, layout,
/// plan shape (dims + terms), and each dimension table's identity
/// (relation name, join key, row count). Deliberately excludes the fact
/// table and the database generation — that exclusion is exactly what
/// lets dimension-side state survive fact deltas (`DeltaAnalysis`'s
/// `Reusable` class).
fn dim_fingerprint(kind: &str, layout: Layout, plan: &ViewPlan, db: &StarDb) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    kind.hash(&mut h);
    layout.label().hash(&mut h);
    format!("{:?}", plan.dims).hash(&mut h);
    format!("{:?}", plan.terms).hash(&mut h);
    for d in &db.dims {
        d.rel.name.as_str().hash(&mut h);
        d.key.as_str().hash(&mut h);
        d.rel.len().hash(&mut h);
    }
    h.finish()
}

/// A plan node: owns its θ-free prepared state, composes into a tree,
/// and threads the per-call [`ExecutionState`] through both phases.
///
/// `prepare` builds everything θ-free exactly once (idempotent: calling
/// it again rebuilds against the current source). `execute` runs only
/// the θ-dependent scan and may be called any number of times per
/// preparation. `describe` renders the node's one-line summary for
/// [`PlanTree::explain`].
///
/// Trees built by [`build_tree`] drive the trait directly; the root is
/// always an `AggregateNode`, so `execute` on the root returns one value
/// per batch aggregate:
///
/// ```
/// use ifaq_engine::{exec, ExecConfig, Layout};
/// use ifaq_engine::exec::{Executor, Source};
/// use ifaq_engine::star::running_example_star;
/// use ifaq_query::{batch::covar_batch, JoinTree, ViewPlan};
///
/// let db = running_example_star();
/// let cat = db.catalog();
/// let jt = JoinTree::build(&cat, &["S", "R", "I"]).unwrap();
/// let batch = covar_batch(&["city"], "units");
/// let plan = ViewPlan::plan(&batch, &jt, &cat).unwrap();
///
/// let mut tree = exec::build_tree(&plan, Some(&batch), Layout::MergedHash,
///                                 ExecConfig::global());
/// tree.prepare(Source::Resident(&db)).unwrap();   // θ-free state, once
/// let results = tree.execute(Source::Resident(&db)).unwrap();
/// assert_eq!(results.len(), plan.terms.len());    // one value per term
/// // The root node names itself through the trait:
/// assert!(tree.explain().starts_with("Aggregate["));
/// ```
pub trait Executor: Send {
    /// Stable node-kind name (used in errors and fingerprints).
    fn name(&self) -> &'static str;

    /// Builds the node's θ-free state against `state.source`.
    fn prepare(&mut self, state: &mut ExecutionState<'_>) -> Result<(), ExecError>;

    /// Runs the θ-dependent scan and returns one value per plan term.
    fn execute(&mut self, state: &mut ExecutionState<'_>) -> Result<AggResults, ExecError>;

    /// One-line self-description for the explain tree.
    fn describe(&self) -> String;

    /// Child nodes, for rendering.
    fn children(&self) -> Vec<&dyn Executor> {
        Vec::new()
    }
}

fn render(node: &dyn Executor, depth: usize, out: &mut String) {
    if depth > 0 {
        out.push_str(&"   ".repeat(depth - 1));
        out.push_str("└─ ");
    }
    out.push_str(&node.describe());
    out.push('\n');
    for c in node.children() {
        render(c, depth + 1, out);
    }
}

/// `R via item (2 payloads), I via store (1 payload)` — the per-dimension
/// summary shared by every join/view node's `describe`.
fn dims_summary(plan: &ViewPlan) -> String {
    plan.dims
        .iter()
        .map(|d| {
            let n = d.payloads.len();
            format!(
                "{} via {} ({} payload{})",
                d.relation,
                d.key_attrs[0],
                n,
                if n == 1 { "" } else { "s" }
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

// ---------------------------------------------------------------------------
// ScanNode
// ---------------------------------------------------------------------------

/// The fact-input leaf: pins *which* fact relation feeds the tree (name,
/// plan-touched columns) and, at prepare time, the input's identity —
/// row counts and mutation epoch for a resident database, the on-disk
/// row count for a stream. Its `execute` is the staleness guard: a
/// resident source whose generation or shape moved since prepare panics
/// with a message naming both sides, because row-index state above this
/// node (join index, trie, sort order) would read out of bounds or
/// silently mis-join.
pub struct ScanNode {
    fact_name: String,
    columns: Vec<Sym>,
    prep: Option<ScanPrep>,
}

enum ScanPrep {
    Resident {
        db_shape: Vec<usize>,
        db_generation: u64,
    },
    Streamed {
        fact_rows: usize,
    },
}

fn db_shape(db: &StarDb) -> Vec<usize> {
    std::iter::once(db.fact.len())
        .chain(db.dims.iter().map(|d| d.rel.len()))
        .collect()
}

impl ScanNode {
    fn new(plan: &ViewPlan) -> ScanNode {
        ScanNode {
            fact_name: plan.tree.root.relation.as_str().to_string(),
            columns: stream::plan_fact_columns(plan),
            prep: None,
        }
    }
}

impl Executor for ScanNode {
    fn name(&self) -> &'static str {
        "scan"
    }

    fn prepare(&mut self, state: &mut ExecutionState<'_>) -> Result<(), ExecError> {
        state.note_prepare();
        self.prep = Some(match state.source {
            Source::Resident(db) => ScanPrep::Resident {
                db_shape: db_shape(db),
                db_generation: db.generation(),
            },
            Source::StreamSchema { fact_rows, .. } => ScanPrep::Streamed { fact_rows },
            Source::Stream(src) => ScanPrep::Streamed {
                fact_rows: src.fact_rows(),
            },
        });
        Ok(())
    }

    fn execute(&mut self, state: &mut ExecutionState<'_>) -> Result<AggResults, ExecError> {
        let prep = self.prep.as_ref().ok_or(ExecError::Unprepared("scan"))?;
        match (prep, state.source) {
            (
                ScanPrep::Resident {
                    db_shape: shape,
                    db_generation,
                },
                Source::Resident(db),
            ) => {
                if *db_generation != db.generation() {
                    panic!(
                        "stale Prepared: state was built at database generation {built} but \
                         execute was called at generation {now}; a delta was applied in \
                         between, so row-index state (join index, trie, sort order) and \
                         baked views may no longer match the data — rebuild with \
                         layout::prepare over the current database",
                        built = db_generation,
                        now = db.generation(),
                    );
                }
                if *shape != db_shape(db) {
                    panic!(
                        "stale Prepared: state was built over a database shaped {built:?} \
                         (fact rows, then each dimension's rows) but execute was called over \
                         one shaped {want:?}; row-index state (join index, trie, sort order) \
                         would read out of bounds — rebuild with layout::prepare for the \
                         current database",
                        built = shape,
                        want = db_shape(db),
                    );
                }
            }
            (ScanPrep::Streamed { .. }, Source::Stream(_)) => {}
            _ => return Err(ExecError::SourceMismatch("scan")),
        }
        // The fused scans above this node drive the actual row
        // consumption; the scan leaf contributes no partials of its own.
        Ok(Vec::new())
    }

    fn describe(&self) -> String {
        let cols = self
            .columns
            .iter()
            .map(Sym::as_str)
            .collect::<Vec<_>>()
            .join(", ");
        match &self.prep {
            Some(ScanPrep::Resident {
                db_shape,
                db_generation,
            }) => format!(
                "Scan[{}: {} rows resident, cols [{}], generation {}]",
                self.fact_name, db_shape[0], cols, db_generation
            ),
            Some(ScanPrep::Streamed { fact_rows }) => format!(
                "Scan[{}: {} rows streamed (IFAQTBL1), cols [{}]]",
                self.fact_name, fact_rows, cols
            ),
            None => format!("Scan[{}: unprepared, cols [{}]]", self.fact_name, cols),
        }
    }
}

// ---------------------------------------------------------------------------
// Per-layout join/view nodes
// ---------------------------------------------------------------------------

/// Adds a streamed chunk's per-chunk partial into the running totals —
/// the fixed-chunk fold the row-sharded layouts share.
fn add_partial(acc: &mut [f64], partial: Vec<f64>) {
    for (a, v) in acc.iter_mut().zip(partial) {
        *a += v;
    }
}

macro_rules! shared_prep_node {
    ($node:ident, $kind:literal, $label:literal, $layout:expr, $prep_ty:ty,
     $prepare_fn:path, $exec_fn:path) => {
        /// A join/view node whose θ-free state is entirely dimension-side
        /// (fact-free), shared verbatim between resident and streamed
        /// execution, and cacheable across fact deltas.
        pub struct $node {
            plan: Arc<ViewPlan>,
            scan: ScanNode,
            prep: Option<Arc<$prep_ty>>,
        }

        impl $node {
            fn new(plan: Arc<ViewPlan>) -> $node {
                let scan = ScanNode::new(&plan);
                $node {
                    plan,
                    scan,
                    prep: None,
                }
            }
        }

        impl Executor for $node {
            fn name(&self) -> &'static str {
                $kind
            }

            fn prepare(&mut self, state: &mut ExecutionState<'_>) -> Result<(), ExecError> {
                self.scan.prepare(state)?;
                state.note_prepare();
                let source = state.source;
                let plan = &self.plan;
                self.prep = Some(match source {
                    Source::Resident(db) => state
                        .dim_state(dim_fingerprint($kind, $layout, plan, db), || {
                            $prepare_fn(plan, db)
                        }),
                    Source::StreamSchema { schema, .. } => state
                        .dim_state(dim_fingerprint($kind, $layout, plan, schema), || {
                            $prepare_fn(plan, schema)
                        }),
                    Source::Stream(src) => {
                        let schema = src.schema_db();
                        state.dim_state(dim_fingerprint($kind, $layout, plan, schema), || {
                            $prepare_fn(plan, schema)
                        })
                    }
                });
                Ok(())
            }

            fn execute(&mut self, state: &mut ExecutionState<'_>) -> Result<AggResults, ExecError> {
                self.scan.execute(state)?;
                let prep = self.prep.as_ref().ok_or(ExecError::Unprepared($kind))?;
                match state.source {
                    Source::Resident(db) => Ok($exec_fn(&self.plan, db, prep, state.cfg())),
                    Source::Stream(src) => {
                        let plan = &self.plan;
                        let (acc, stats) = state.with_stream_parts(|cfg, vcols, mc| {
                            let serial = ExecConfig::serial();
                            stream::run_row_stream(plan, src, cfg, vcols, mc, &mut |work, acc| {
                                add_partial(acc, $exec_fn(plan, work, prep, &serial));
                            })
                        })?;
                        state.stream_stats = Some(stats);
                        Ok(acc)
                    }
                    Source::StreamSchema { .. } => Err(ExecError::SourceMismatch($kind)),
                }
            }

            fn describe(&self) -> String {
                format!(concat!($label, "[{}]"), dims_summary(&self.plan))
            }

            fn children(&self) -> Vec<&dyn Executor> {
                vec![&self.scan]
            }
        }
    };
}

shared_prep_node!(
    MergedHashNode,
    "merged-hash",
    "MergedHashViews",
    Layout::MergedHash,
    physical::MergedPrep,
    physical::prepare_merged,
    physical::exec_merged_prepared
);

shared_prep_node!(
    DenseArrayNode,
    "dense-array",
    "DenseArrayViews",
    Layout::Array,
    physical::ArrayPrep,
    physical::prepare_array,
    physical::exec_array_prepared
);

shared_prep_node!(
    BoxedRecordsNode,
    "boxed-records",
    "BoxedRecordViews",
    Layout::BoxedRecords,
    physical::BoxedRecordsPrep,
    physical::prepare_boxed_records,
    physical::exec_boxed_records_prepared
);

shared_prep_node!(
    BoxedScalarsNode,
    "boxed-scalars",
    "BoxedScalarViews",
    Layout::BoxedScalars,
    physical::BoxedScalarsPrep,
    physical::prepare_boxed_scalars,
    physical::exec_boxed_scalars_prepared
);

/// The pushdown node: one private view set per (aggregate, dimension)
/// pair — Fig. 7a's deliberately redundant starting rung. Dimension-side
/// only, so the whole state is cacheable; the streamed transcription
/// carries per-term accumulators across chunk boundaries (in memory each
/// term is one unbroken sequential fold, sharded per *term*).
pub struct PushdownNode {
    plan: Arc<ViewPlan>,
    scan: ScanNode,
    prep: Option<Arc<physical::PushdownPrep>>,
}

impl PushdownNode {
    fn new(plan: Arc<ViewPlan>) -> PushdownNode {
        let scan = ScanNode::new(&plan);
        PushdownNode {
            plan,
            scan,
            prep: None,
        }
    }
}

impl Executor for PushdownNode {
    fn name(&self) -> &'static str {
        "pushdown"
    }

    fn prepare(&mut self, state: &mut ExecutionState<'_>) -> Result<(), ExecError> {
        self.scan.prepare(state)?;
        state.note_prepare();
        let source = state.source;
        let plan = &self.plan;
        let schema = match source {
            Source::Resident(db) => db,
            Source::StreamSchema { schema, .. } => schema,
            Source::Stream(src) => src.schema_db(),
        };
        self.prep = Some(state.dim_state(
            dim_fingerprint("pushdown", Layout::Pushdown, plan, schema),
            || physical::prepare_pushdown(plan, schema),
        ));
        Ok(())
    }

    fn execute(&mut self, state: &mut ExecutionState<'_>) -> Result<AggResults, ExecError> {
        self.scan.execute(state)?;
        let prep = self
            .prep
            .as_ref()
            .ok_or(ExecError::Unprepared("pushdown"))?;
        match state.source {
            Source::Resident(db) => Ok(physical::exec_pushdown_prepared(
                &self.plan,
                db,
                prep,
                state.cfg(),
            )),
            Source::Stream(src) => {
                let plan = &self.plan;
                let nterms = plan.terms.len();
                let (acc, stats) = state.with_stream_parts(|cfg, vcols, mc| {
                    stream::run_row_stream(plan, src, cfg, vcols, mc, &mut |work, acc| {
                        // Per-term accumulators live in `acc` and carry
                        // across chunks — the unbroken sequential fold.
                        let bounds = physical::bind_dims(plan, work);
                        let fa = physical::FactAccess::bind(plan, work);
                        let n = work.fact.len();
                        'row: for i in 0..n {
                            for t in 0..nterms {
                                let mut v = fa[t].eval(i);
                                if v == 0.0 {
                                    continue;
                                }
                                for (b, view) in bounds.iter().zip(&prep.views[t]) {
                                    match view.get(&b.fact_keys[i]) {
                                        Some(&pv) => v *= pv,
                                        None => continue 'row,
                                    }
                                }
                                acc[t] += v;
                            }
                        }
                    })
                })?;
                state.stream_stats = Some(stats);
                Ok(acc)
            }
            Source::StreamSchema { .. } => Err(ExecError::SourceMismatch("pushdown")),
        }
    }

    fn describe(&self) -> String {
        format!(
            "PushdownViews[{} term view sets; {}]",
            self.plan.terms.len(),
            dims_summary(&self.plan)
        )
    }

    fn children(&self) -> Vec<&dyn Executor> {
        vec![&self.scan]
    }
}

/// The materialized baseline node: resolve the star join once into a
/// row-index structure, then gather + aggregate over the joined matrix.
/// The join index holds fact row indices, so it is fact-derived state —
/// rebuilt per preparation, never cached.
pub struct MaterializedNode {
    plan: Arc<ViewPlan>,
    scan: ScanNode,
    state: Option<MatState>,
}

enum MatState {
    Resident(physical::MatPrep),
    /// Streamed index join: per-dimension key → row maps (dimension-side
    /// and cacheable).
    Streamed(Arc<Vec<HashMap<i64, usize>>>),
}

impl MaterializedNode {
    fn new(plan: Arc<ViewPlan>) -> MaterializedNode {
        let scan = ScanNode::new(&plan);
        MaterializedNode {
            plan,
            scan,
            state: None,
        }
    }
}

impl Executor for MaterializedNode {
    fn name(&self) -> &'static str {
        "materialized"
    }

    fn prepare(&mut self, state: &mut ExecutionState<'_>) -> Result<(), ExecError> {
        self.scan.prepare(state)?;
        state.note_prepare();
        let source = state.source;
        self.state = Some(match source {
            Source::Resident(db) => MatState::Resident(physical::prepare_materialized(db)),
            Source::StreamSchema { schema, .. } => MatState::Streamed(state.dim_state(
                dim_fingerprint("materialized", Layout::Materialized, &self.plan, schema),
                || schema.dims.iter().map(|d| d.key_index()).collect(),
            )),
            Source::Stream(src) => {
                let schema = src.schema_db();
                MatState::Streamed(state.dim_state(
                    dim_fingerprint("materialized", Layout::Materialized, &self.plan, schema),
                    || schema.dims.iter().map(|d| d.key_index()).collect(),
                ))
            }
        });
        Ok(())
    }

    fn execute(&mut self, state: &mut ExecutionState<'_>) -> Result<AggResults, ExecError> {
        self.scan.execute(state)?;
        let prep = self
            .state
            .as_ref()
            .ok_or(ExecError::Unprepared("materialized"))?;
        match (prep, state.source) {
            (MatState::Resident(p), Source::Resident(db)) => Ok(
                physical::exec_materialized_prepared(&self.plan, db, p, state.cfg()),
            ),
            (MatState::Streamed(key_indexes), Source::Stream(src)) => {
                let plan = &self.plan;
                let (acc, stats) = state.with_stream_parts(|cfg, vcols, mc| {
                    stream::run_materialized_stream(plan, src, key_indexes, cfg, vcols, mc)
                })?;
                state.stream_stats = Some(stats);
                Ok(acc)
            }
            _ => Err(ExecError::SourceMismatch("materialized")),
        }
    }

    fn describe(&self) -> String {
        let mode = match &self.state {
            Some(MatState::Resident(_)) => "resolved join index",
            Some(MatState::Streamed(_)) => "streamed index join",
            None => "unprepared",
        };
        format!("MaterializedJoin[{}; {}]", mode, dims_summary(&self.plan))
    }

    fn children(&self) -> Vec<&dyn Executor> {
        vec![&self.scan]
    }
}

/// Summary of a trie-family level analysis for `describe`.
fn kp_summary(kp: &physical::KeyPlan) -> String {
    let prefix = kp
        .prefix
        .iter()
        .map(|(c, _)| c.as_str())
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "prefix [{prefix}], {} per-row dim{}, {} row program{}",
        kp.remainder.len(),
        if kp.remainder.len() == 1 { "" } else { "s" },
        kp.rowprogs.len(),
        if kp.rowprogs.len() == 1 { "" } else { "s" }
    )
}

/// The fact-trie node (Fig. 7a "Dictionary to Trie"): merged hash views
/// (dimension-side, cacheable) plus the fact trie and level analysis
/// (fact-derived, rebuilt per preparation). Streamed execution skips the
/// trie — rows arrive in file order, the order trie leaves hold them —
/// and replays the in-memory group/chunk flush discipline.
pub struct TrieNode {
    plan: Arc<ViewPlan>,
    scan: ScanNode,
    state: Option<TrieState>,
}

enum TrieState {
    Resident {
        trie: physical::FactTrie,
        views: Arc<Vec<HashMap<i64, Vec<f64>>>>,
        kp: physical::KeyPlan,
    },
    Streamed {
        views: Arc<Vec<HashMap<i64, Vec<f64>>>>,
        kp: physical::KeyPlan,
    },
}

impl TrieNode {
    fn new(plan: Arc<ViewPlan>) -> TrieNode {
        let scan = ScanNode::new(&plan);
        TrieNode {
            plan,
            scan,
            state: None,
        }
    }
}

impl Executor for TrieNode {
    fn name(&self) -> &'static str {
        "trie"
    }

    fn prepare(&mut self, state: &mut ExecutionState<'_>) -> Result<(), ExecError> {
        self.scan.prepare(state)?;
        state.note_prepare();
        let source = state.source;
        let plan = &self.plan;
        self.state = Some(match source {
            Source::Resident(db) => {
                let views = state
                    .dim_state(dim_fingerprint("trie", Layout::Trie, plan, db), || {
                        physical::build_merged_views(plan, db)
                    });
                let kp = physical::key_plan(plan, db);
                let trie = physical::build_fact_trie_from(&kp, db);
                TrieState::Resident { trie, views, kp }
            }
            Source::StreamSchema { schema, fact_rows } => TrieState::Streamed {
                views: state.dim_state(dim_fingerprint("trie", Layout::Trie, plan, schema), || {
                    physical::build_merged_views(plan, schema)
                }),
                kp: physical::key_plan_with_rows(plan, schema, fact_rows),
            },
            Source::Stream(src) => {
                let schema = src.schema_db();
                TrieState::Streamed {
                    views: state
                        .dim_state(dim_fingerprint("trie", Layout::Trie, plan, schema), || {
                            physical::build_merged_views(plan, schema)
                        }),
                    kp: physical::key_plan_with_rows(plan, schema, src.fact_rows()),
                }
            }
        });
        Ok(())
    }

    fn execute(&mut self, state: &mut ExecutionState<'_>) -> Result<AggResults, ExecError> {
        self.scan.execute(state)?;
        let prep = self.state.as_ref().ok_or(ExecError::Unprepared("trie"))?;
        match (prep, state.source) {
            (TrieState::Resident { trie, views, kp }, Source::Resident(db)) => Ok(
                physical::exec_trie_parts(&self.plan, db, trie, views, kp, state.cfg()),
            ),
            (TrieState::Streamed { views, kp }, Source::Stream(src)) => {
                let plan = &self.plan;
                let (acc, stats) = state.with_stream_parts(|cfg, vcols, mc| {
                    stream::run_trie_stream(plan, src, views, kp, cfg, vcols, mc)
                })?;
                state.stream_stats = Some(stats);
                Ok(acc)
            }
            _ => Err(ExecError::SourceMismatch("trie")),
        }
    }

    fn describe(&self) -> String {
        let detail = match &self.state {
            Some(TrieState::Resident { kp, .. }) => kp_summary(kp),
            Some(TrieState::Streamed { kp, .. }) => format!("streamed, {}", kp_summary(kp)),
            None => "unprepared".to_string(),
        };
        format!("FactTrie[{}; {}]", detail, dims_summary(&self.plan))
    }

    fn children(&self) -> Vec<&dyn Executor> {
        vec![&self.scan]
    }
}

/// The sorted-trie node (Fig. 7b "Sorted Trie"): dense key-indexed views
/// (dimension-side, cacheable) plus the sorted fact order and level
/// analysis (fact-derived, rebuilt per preparation).
pub struct SortedTrieNode {
    plan: Arc<ViewPlan>,
    scan: ScanNode,
    state: Option<SortedState>,
}

enum SortedState {
    Resident {
        sorted: physical::SortedStar,
        views: Arc<Vec<physical::DenseView>>,
        kp: physical::KeyPlan,
    },
    Streamed {
        views: Arc<Vec<physical::DenseView>>,
        kp: physical::KeyPlan,
    },
}

impl SortedTrieNode {
    fn new(plan: Arc<ViewPlan>) -> SortedTrieNode {
        let scan = ScanNode::new(&plan);
        SortedTrieNode {
            plan,
            scan,
            state: None,
        }
    }
}

impl Executor for SortedTrieNode {
    fn name(&self) -> &'static str {
        "sorted-trie"
    }

    fn prepare(&mut self, state: &mut ExecutionState<'_>) -> Result<(), ExecError> {
        self.scan.prepare(state)?;
        state.note_prepare();
        let source = state.source;
        let plan = &self.plan;
        self.state = Some(match source {
            Source::Resident(db) => {
                let views = state.dim_state(
                    dim_fingerprint("sorted-trie", Layout::SortedTrie, plan, db),
                    || physical::build_dense_views(plan, db),
                );
                let kp = physical::key_plan(plan, db);
                let sorted = physical::build_sorted_from(&kp, db);
                SortedState::Resident { sorted, views, kp }
            }
            Source::StreamSchema { schema, fact_rows } => SortedState::Streamed {
                views: state.dim_state(
                    dim_fingerprint("sorted-trie", Layout::SortedTrie, plan, schema),
                    || physical::build_dense_views(plan, schema),
                ),
                kp: physical::key_plan_with_rows(plan, schema, fact_rows),
            },
            Source::Stream(src) => {
                let schema = src.schema_db();
                SortedState::Streamed {
                    views: state.dim_state(
                        dim_fingerprint("sorted-trie", Layout::SortedTrie, plan, schema),
                        || physical::build_dense_views(plan, schema),
                    ),
                    kp: physical::key_plan_with_rows(plan, schema, src.fact_rows()),
                }
            }
        });
        Ok(())
    }

    fn execute(&mut self, state: &mut ExecutionState<'_>) -> Result<AggResults, ExecError> {
        self.scan.execute(state)?;
        let prep = self
            .state
            .as_ref()
            .ok_or(ExecError::Unprepared("sorted-trie"))?;
        match (prep, state.source) {
            (SortedState::Resident { sorted, views, kp }, Source::Resident(db)) => Ok(
                physical::exec_sorted_parts(&self.plan, db, sorted, views, kp, state.cfg()),
            ),
            (SortedState::Streamed { views, kp }, Source::Stream(src)) => {
                let plan = &self.plan;
                let (acc, stats) = state.with_stream_parts(|cfg, vcols, mc| {
                    stream::run_sorted_stream(plan, src, views, kp, cfg, vcols, mc)
                })?;
                state.stream_stats = Some(stats);
                Ok(acc)
            }
            _ => Err(ExecError::SourceMismatch("sorted-trie")),
        }
    }

    fn describe(&self) -> String {
        let detail = match &self.state {
            Some(SortedState::Resident { kp, .. }) => kp_summary(kp),
            Some(SortedState::Streamed { kp, .. }) => format!("streamed, {}", kp_summary(kp)),
            None => "unprepared".to_string(),
        };
        format!("SortedTrie[{}; {}]", detail, dims_summary(&self.plan))
    }

    fn children(&self) -> Vec<&dyn Executor> {
        vec![&self.scan]
    }
}

// ---------------------------------------------------------------------------
// AggregateNode and the tree
// ---------------------------------------------------------------------------

/// The root: pins the term → aggregate mapping (names, when the batch is
/// known) and the fold discipline every child obeys — fixed `chunk_rows`
/// chunks whose partial sums merge by addition in ascending chunk order,
/// which is what makes results bit-identical across thread counts and
/// across the resident/streamed split.
pub struct AggregateNode {
    nterms: usize,
    names: Vec<String>,
    child: Box<dyn Executor>,
}

impl Executor for AggregateNode {
    fn name(&self) -> &'static str {
        "aggregate"
    }

    fn prepare(&mut self, state: &mut ExecutionState<'_>) -> Result<(), ExecError> {
        state.note_prepare();
        self.child.prepare(state)
    }

    fn execute(&mut self, state: &mut ExecutionState<'_>) -> Result<AggResults, ExecError> {
        let results = self.child.execute(state)?;
        debug_assert_eq!(results.len(), self.nterms, "term/aggregate arity drift");
        Ok(results)
    }

    fn describe(&self) -> String {
        if self.names.is_empty() {
            format!("Aggregate[{} terms]", self.nterms)
        } else {
            format!(
                "Aggregate[{} terms: {}]",
                self.nterms,
                self.names.join(", ")
            )
        }
    }

    fn children(&self) -> Vec<&dyn Executor> {
        vec![self.child.as_ref()]
    }
}

/// A built executor tree: the root [`AggregateNode`], the plan and
/// layout it was built for, and a default [`ExecConfig`]. Construct with
/// [`build_tree`]; drive with [`PlanTree::prepare`] /
/// [`PlanTree::execute`] (or the `_with` variants for an explicit
/// [`ExecutionState`]); render with [`PlanTree::explain`].
pub struct PlanTree {
    layout: Layout,
    plan: Arc<ViewPlan>,
    cfg: ExecConfig,
    root: AggregateNode,
    prepares: usize,
}

impl PlanTree {
    /// The layout this tree executes.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// The plan this tree was built for.
    pub fn plan(&self) -> &ViewPlan {
        &self.plan
    }

    /// Prepares every node against `source` with the tree's default
    /// config (θ-free state, built once; repeat calls rebuild).
    pub fn prepare(&mut self, source: Source<'_>) -> Result<(), ExecError> {
        let cfg = self.cfg;
        self.prepare_with(&mut ExecutionState::new(source).with_cfg(cfg))
    }

    /// [`PlanTree::prepare`] with an explicit [`ExecutionState`] (cache,
    /// config, streaming extras).
    pub fn prepare_with(&mut self, state: &mut ExecutionState<'_>) -> Result<(), ExecError> {
        let before = state.prepares();
        self.root.prepare(state)?;
        self.prepares += state.prepares() - before;
        Ok(())
    }

    /// Executes the θ-dependent scan over `source` with the tree's
    /// default config.
    pub fn execute(&mut self, source: Source<'_>) -> Result<AggResults, ExecError> {
        let cfg = self.cfg;
        self.execute_with(&mut ExecutionState::new(source).with_cfg(cfg))
    }

    /// [`PlanTree::execute`] with an explicit [`ExecutionState`].
    pub fn execute_with(
        &mut self,
        state: &mut ExecutionState<'_>,
    ) -> Result<AggResults, ExecError> {
        self.root.execute(state)
    }

    /// How many node-prepare invocations this tree has run, cumulatively.
    /// After one [`PlanTree::prepare`] this equals the node count (3:
    /// aggregate, join/view, scan) and — the accounting the differential
    /// suites rely on — **never moves again** across any number of
    /// executes: θ-free state is built exactly once.
    pub fn prepare_invocations(&self) -> usize {
        self.prepares
    }

    /// Renders the tree, one node per line, e.g.:
    ///
    /// ```text
    /// Aggregate[10 terms: m_city_city, m_city_price, …, m_units, count]
    /// └─ MergedHashViews[I via item (3 payloads), R via store (3 payloads)]
    ///    └─ Scan[S: 5 rows resident, cols [item, store, units], generation 0]
    /// ```
    pub fn explain(&self) -> String {
        let mut out = String::new();
        render(&self.root, 0, &mut out);
        out
    }
}

impl fmt::Debug for PlanTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PlanTree({}):\n{}", self.layout, self.explain())
    }
}

/// Builds the executor tree for `plan` under `layout`: an
/// [`AggregateNode`] over the layout's join/view node over a
/// [`ScanNode`]. `batch` (when given) labels the aggregate node with
/// result names for [`PlanTree::explain`]; `cfg` becomes the tree's
/// default sharding config (overridable per call via
/// [`ExecutionState::with_cfg`]).
///
/// This is the single construction point every execution path routes
/// through — `layout::prepare`/`execute_with`, `Compiled`, the ml
/// trainers, `ServeEngine::apply_delta`, and streaming.
///
/// ```
/// use ifaq_engine::{exec, ExecConfig, Layout};
/// use ifaq_engine::star::running_example_star;
/// use ifaq_query::{batch::covar_batch, JoinTree, ViewPlan};
///
/// let db = running_example_star();
/// let cat = db.catalog();
/// let jt = JoinTree::build(&cat, &["S", "R", "I"]).unwrap();
/// let batch = covar_batch(&["city", "price"], "units");
/// let plan = ViewPlan::plan(&batch, &jt, &cat).unwrap();
///
/// let mut tree = exec::build_tree(&plan, Some(&batch), Layout::SortedTrie,
///                                 ExecConfig::global());
/// tree.prepare(exec::Source::Resident(&db)).unwrap();
/// // One node-prepare per node: aggregate, join/view, scan.
/// assert_eq!(tree.prepare_invocations(), 3);
/// // Repeated executes reuse the θ-free state built above.
/// let a = tree.execute(exec::Source::Resident(&db)).unwrap();
/// let b = tree.execute(exec::Source::Resident(&db)).unwrap();
/// assert_eq!(a, b);
/// assert_eq!(tree.prepare_invocations(), 3);
/// ```
///
/// # Panics
///
/// If a dimension payload of `plan` references an *iteration column*
/// (the `__`-prefixed derived-per-iteration convention of
/// [`ifaq_ir::analysis::is_iteration_column`], e.g. logistic's
/// `__sigma`). Dimension payload values are baked into prepared views,
/// so a θ-dependent column there would freeze iteration 0's values into
/// every subsequent iteration — iteration columns must be fact-owned,
/// where executors read values live.
pub fn build_tree(
    plan: &ViewPlan,
    batch: Option<&AggBatch>,
    layout: Layout,
    cfg: &ExecConfig,
) -> PlanTree {
    for dim in &plan.dims {
        for payload in &dim.payloads {
            let theta_dependent = payload
                .factors
                .iter()
                .map(|f| f.as_str())
                .chain(payload.filter.iter().map(|p| p.attr.as_str()))
                .find(|a| ifaq_ir::analysis::is_iteration_column(a));
            if let Some(attr) = theta_dependent {
                panic!(
                    "cannot prepare layout state: dimension `{}` owns iteration column \
                     `{attr}`, which changes per training iteration; prepared views would \
                     bake stale values — iteration columns must live on the fact table",
                    dim.relation
                );
            }
        }
    }
    let plan = Arc::new(plan.clone());
    let child: Box<dyn Executor> = match layout {
        Layout::Materialized => Box::new(MaterializedNode::new(Arc::clone(&plan))),
        Layout::Pushdown => Box::new(PushdownNode::new(Arc::clone(&plan))),
        Layout::BoxedRecords => Box::new(BoxedRecordsNode::new(Arc::clone(&plan))),
        Layout::BoxedScalars => Box::new(BoxedScalarsNode::new(Arc::clone(&plan))),
        Layout::MergedHash => Box::new(MergedHashNode::new(Arc::clone(&plan))),
        Layout::Trie => Box::new(TrieNode::new(Arc::clone(&plan))),
        Layout::Array => Box::new(DenseArrayNode::new(Arc::clone(&plan))),
        Layout::SortedTrie => Box::new(SortedTrieNode::new(Arc::clone(&plan))),
    };
    let names = batch
        .map(|b| b.aggs.iter().map(|a| a.name.clone()).collect())
        .unwrap_or_default();
    PlanTree {
        layout,
        cfg: *cfg,
        root: AggregateNode {
            nterms: plan.terms.len(),
            names,
            child,
        },
        plan,
        prepares: 0,
    }
}

/// Renders the executor tree `plan` × `layout` would execute, without
/// preparing it (nodes show `unprepared` where state-derived detail
/// would go). For a prepared rendering use [`PlanTree::explain`] or
/// `layout::Prepared::explain_tree`.
///
/// ```
/// use ifaq_engine::{exec, Layout};
/// use ifaq_engine::star::running_example_star;
/// use ifaq_query::{batch::covar_batch, JoinTree, ViewPlan};
///
/// let db = running_example_star();
/// let cat = db.catalog();
/// let jt = JoinTree::build(&cat, &["S", "R", "I"]).unwrap();
/// let batch = covar_batch(&["city"], "units");
/// let plan = ViewPlan::plan(&batch, &jt, &cat).unwrap();
/// let text = exec::explain_tree(&plan, Some(&batch), Layout::Array);
/// assert!(text.starts_with("Aggregate["));
/// assert!(text.contains("DenseArrayViews"));
/// ```
pub fn explain_tree(plan: &ViewPlan, batch: Option<&AggBatch>, layout: Layout) -> String {
    build_tree(plan, batch, layout, ExecConfig::global()).explain()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::star::running_example_star;
    use ifaq_query::batch::covar_batch;
    use ifaq_query::JoinTree;

    fn setup() -> (StarDb, AggBatch, ViewPlan) {
        let db = running_example_star();
        let cat = db.catalog();
        let jt = JoinTree::build(&cat, &["S", "R", "I"]).unwrap();
        let batch = covar_batch(&["city", "price"], "units");
        let plan = ViewPlan::plan(&batch, &jt, &cat).unwrap();
        (db, batch, plan)
    }

    #[test]
    fn every_layout_tree_matches_the_kernels() {
        let (db, batch, plan) = setup();
        for &layout in Layout::all() {
            let mut tree = build_tree(&plan, Some(&batch), layout, ExecConfig::global());
            tree.prepare(Source::Resident(&db)).unwrap();
            let got = tree.execute(Source::Resident(&db)).unwrap();
            let direct = crate::layout::execute(
                layout,
                &plan,
                &db,
                &crate::layout::prepare(layout, &plan, &db),
            );
            assert_eq!(got, direct, "{layout}: tree != direct kernel");
        }
    }

    #[test]
    fn execute_before_prepare_is_an_error() {
        let (db, batch, plan) = setup();
        let mut tree = build_tree(
            &plan,
            Some(&batch),
            Layout::MergedHash,
            ExecConfig::global(),
        );
        let err = tree.execute(Source::Resident(&db)).unwrap_err();
        assert!(matches!(err, ExecError::Unprepared(_)), "{err}");
    }

    #[test]
    fn prepare_counts_stand_still_across_executes() {
        let (db, batch, plan) = setup();
        for &layout in Layout::all() {
            let mut tree = build_tree(&plan, Some(&batch), layout, ExecConfig::global());
            tree.prepare(Source::Resident(&db)).unwrap();
            let after_prepare = tree.prepare_invocations();
            assert_eq!(after_prepare, 3, "{layout}: aggregate + join/view + scan");
            let first = tree.execute(Source::Resident(&db)).unwrap();
            for _ in 0..3 {
                assert_eq!(tree.execute(Source::Resident(&db)).unwrap(), first);
            }
            assert_eq!(
                tree.prepare_invocations(),
                after_prepare,
                "{layout}: execute must never re-prepare"
            );
        }
    }

    #[test]
    fn cache_reuses_dim_state_bit_identically() {
        let (db, batch, plan) = setup();
        let cache = PrepCache::new();
        for &layout in Layout::all() {
            let mut cold = build_tree(&plan, Some(&batch), layout, ExecConfig::global());
            cold.prepare_with(&mut ExecutionState::new(Source::Resident(&db)).with_cache(&cache))
                .unwrap();
            let baseline = cold.execute(Source::Resident(&db)).unwrap();

            let hits_before = cache.hits();
            let mut warm = build_tree(&plan, Some(&batch), layout, ExecConfig::global());
            warm.prepare_with(&mut ExecutionState::new(Source::Resident(&db)).with_cache(&cache))
                .unwrap();
            let warm_res = warm.execute(Source::Resident(&db)).unwrap();
            assert_eq!(warm_res, baseline, "{layout}: cached prep drifted");
            if layout != Layout::Materialized {
                // Every layout except the (fully fact-derived) resident
                // materialized baseline caches its dimension-side state.
                assert!(cache.hits() > hits_before, "{layout}: no cache hit");
            }
        }
        assert!(!cache.is_empty());
    }

    #[test]
    fn explain_renders_all_three_levels() {
        let (db, batch, plan) = setup();
        let mut tree = build_tree(
            &plan,
            Some(&batch),
            Layout::SortedTrie,
            ExecConfig::global(),
        );
        tree.prepare(Source::Resident(&db)).unwrap();
        let text = tree.explain();
        assert!(text.contains("Aggregate[10 terms: m_city_city,"), "{text}");
        assert!(text.contains("SortedTrie[prefix ["), "{text}");
        assert!(text.contains("Scan[S: 5 rows resident"), "{text}");
    }
}
