//! Property tests for prepared-state execution: on random star schemas,
//! random chunk layouts, and random thread counts, executing over a
//! cached `layout::Prepared` must be bit-identical to fresh
//! prepare+execute (the one-shot wrappers), and repeated execution over
//! one `Prepared` must never drift — the executors may only *read* the
//! prepared state, so any divergence exposes accidental interior
//! mutation or a rebuild that took a different path.

use ifaq_engine::layout::{execute_with, prepare};
use ifaq_engine::par::ExecConfig;
use ifaq_engine::{Dim, Layout, StarDb};
use ifaq_ir::Sym;
use ifaq_query::batch::covar_batch;
use ifaq_query::{JoinTree, ViewPlan};
use ifaq_storage::{ColRelation, Column};
use proptest::prelude::*;

fn cfg(threads: usize, chunk_rows: usize) -> ExecConfig {
    ExecConfig::with_threads(threads).with_chunk_rows(chunk_rows)
}

/// A random star database over a fixed two-dimension schema:
/// `F(k1, k2, x, y) ⋈ D1(k1, a) ⋈ D2(k2, b)`. Fact keys are drawn from a
/// range one wider than each dimension, so some rows dangle and the
/// inner join drops them — the executors' other code path.
#[derive(Clone, Debug)]
struct RandomStar {
    k1: Vec<i64>,
    k2: Vec<i64>,
    x: Vec<f64>,
    y: Vec<f64>,
    a: Vec<f64>,
    b: Vec<f64>,
}

impl RandomStar {
    fn db(&self) -> StarDb {
        let fact = ColRelation::new(
            "F",
            vec![Sym::new("k1"), Sym::new("k2"), Sym::new("x"), Sym::new("y")],
            vec![
                Column::I64(self.k1.clone()),
                Column::I64(self.k2.clone()),
                Column::F64(self.x.clone()),
                Column::F64(self.y.clone()),
            ],
        );
        let d1 = ColRelation::new(
            "D1",
            vec![Sym::new("k1"), Sym::new("a")],
            vec![
                Column::I64((0..self.a.len() as i64).collect()),
                Column::F64(self.a.clone()),
            ],
        );
        let d2 = ColRelation::new(
            "D2",
            vec![Sym::new("k2"), Sym::new("b")],
            vec![
                Column::I64((0..self.b.len() as i64).collect()),
                Column::F64(self.b.clone()),
            ],
        );
        StarDb::new(fact, vec![Dim::new(d1, "k1"), Dim::new(d2, "k2")])
    }
}

fn arb_star() -> impl Strategy<Value = RandomStar> {
    // Row count 0..40 (covering rows < threads and the empty table),
    // dimension cardinalities 1..8.
    (0usize..40, 1usize..8, 1usize..8)
        .prop_flat_map(|(rows, c1, c2)| {
            (
                proptest::collection::vec(0i64..(c1 as i64 + 1), rows..(rows + 1)),
                proptest::collection::vec(0i64..(c2 as i64 + 1), rows..(rows + 1)),
                proptest::collection::vec(-2.0f64..2.0, rows..(rows + 1)),
                proptest::collection::vec(-2.0f64..2.0, rows..(rows + 1)),
                proptest::collection::vec(-2.0f64..2.0, c1..(c1 + 1)),
                proptest::collection::vec(-2.0f64..2.0, c2..(c2 + 1)),
            )
        })
        .prop_map(|(k1, k2, x, y, a, b)| RandomStar { k1, k2, x, y, a, b })
}

fn plan_for(db: &StarDb) -> ViewPlan {
    let cat = db.catalog();
    let tree = JoinTree::build_with_root(&cat, "F", &["D1", "D2"]).unwrap();
    let batch = covar_batch(&["a", "b", "x"], "y");
    ViewPlan::plan(&batch, &tree, &cat).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// One cached `Prepared` per layout: every execute over it (any
    /// threads × chunk size) equals the fresh prepare+execute result,
    /// bit for bit.
    #[test]
    fn reuse_equals_fresh_on_random_schemas(
        star in arb_star(),
        chunk_rows in 1usize..32,
        threads in 1usize..9,
    ) {
        let db = star.db();
        let plan = plan_for(&db);
        let c = cfg(threads, chunk_rows);
        for &layout in Layout::all() {
            let cached = prepare(layout, &plan, &db);
            let fresh = execute_with(layout, &plan, &db, &prepare(layout, &plan, &db), &c);
            let reused = execute_with(layout, &plan, &db, &cached, &c);
            prop_assert_eq!(&reused, &fresh, "{} reuse != fresh", layout);
        }
    }

    /// Repeated execution over one `Prepared` never drifts, across a mix
    /// of configs — guarding against interior mutation of the prepared
    /// state by any executor.
    #[test]
    fn repeated_execution_never_drifts(
        star in arb_star(),
        chunk_rows in 1usize..32,
        threads in 1usize..9,
        layout_idx in 0usize..8,
    ) {
        let db = star.db();
        let plan = plan_for(&db);
        let layout = Layout::all()[layout_idx];
        let cached = prepare(layout, &plan, &db);
        let c = cfg(threads, chunk_rows);
        let first = execute_with(layout, &plan, &db, &cached, &c);
        for rep in 0..4 {
            let again = execute_with(layout, &plan, &db, &cached, &c);
            prop_assert_eq!(&again, &first, "{} drifted at repetition {}", layout, rep);
        }
        // Interleave a different config, then re-check the original: the
        // state must be untouched by other execution shapes too.
        let other = cfg(threads.max(2), chunk_rows + 1);
        let _ = execute_with(layout, &plan, &db, &cached, &other);
        prop_assert_eq!(
            &execute_with(layout, &plan, &db, &cached, &c),
            &first,
            "{} drifted after an interleaved config",
            layout
        );
    }

    /// Cached-prep results still agree with the materialized reference
    /// within the documented cross-engine tolerance.
    #[test]
    fn cached_prep_agrees_with_materialized_reference(
        star in arb_star(),
        chunk_rows in 1usize..32,
        threads in 2usize..9,
    ) {
        let db = star.db();
        let plan = plan_for(&db);
        let reference = {
            let p = prepare(Layout::Materialized, &plan, &db);
            execute_with(Layout::Materialized, &plan, &db, &p, &ExecConfig::serial())
        };
        for &layout in Layout::all() {
            let cached = prepare(layout, &plan, &db);
            let got = execute_with(layout, &plan, &db, &cached, &cfg(threads, chunk_rows));
            for (t, (p, q)) in got.iter().zip(&reference).enumerate() {
                prop_assert!(
                    (p - q).abs() <= 1e-9 * (1.0 + p.abs().max(q.abs())),
                    "{} term {}: {} vs materialized {}", layout, t, p, q
                );
            }
        }
    }
}
