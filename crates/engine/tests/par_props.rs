//! Property tests for the sharded-execution scaffold (`ifaq_engine::par`)
//! and for the executors built on it: chunked partial-sum merging must
//! equal one-shot accumulation on random inputs, random chunk layouts,
//! and random thread counts — including the empty-chunk (`rows = 0`) and
//! `rows < threads` edge cases.

use ifaq_engine::par::{run_chunked, run_chunked_sums, ExecConfig};
use ifaq_engine::physical::{exec_materialized_cfg, exec_merged_cfg};
use ifaq_engine::{Dim, StarDb};
use ifaq_ir::Sym;
use ifaq_query::batch::covar_batch;
use ifaq_query::{JoinTree, ViewPlan};
use ifaq_storage::{ColRelation, Column};
use proptest::prelude::*;

fn cfg(threads: usize, chunk_rows: usize) -> ExecConfig {
    ExecConfig::with_threads(threads).with_chunk_rows(chunk_rows)
}

/// A random star database over a fixed two-dimension schema:
/// `F(k1, k2, x, y) ⋈ D1(k1, a) ⋈ D2(k2, b)`. Fact keys are drawn from a
/// range one wider than each dimension, so some rows dangle and the
/// inner join drops them — the executors' other code path.
#[derive(Clone, Debug)]
struct RandomStar {
    k1: Vec<i64>,
    k2: Vec<i64>,
    x: Vec<f64>,
    y: Vec<f64>,
    a: Vec<f64>,
    b: Vec<f64>,
}

impl RandomStar {
    fn db(&self) -> StarDb {
        let fact = ColRelation::new(
            "F",
            vec![Sym::new("k1"), Sym::new("k2"), Sym::new("x"), Sym::new("y")],
            vec![
                Column::I64(self.k1.clone()),
                Column::I64(self.k2.clone()),
                Column::F64(self.x.clone()),
                Column::F64(self.y.clone()),
            ],
        );
        let d1 = ColRelation::new(
            "D1",
            vec![Sym::new("k1"), Sym::new("a")],
            vec![
                Column::I64((0..self.a.len() as i64).collect()),
                Column::F64(self.a.clone()),
            ],
        );
        let d2 = ColRelation::new(
            "D2",
            vec![Sym::new("k2"), Sym::new("b")],
            vec![
                Column::I64((0..self.b.len() as i64).collect()),
                Column::F64(self.b.clone()),
            ],
        );
        StarDb::new(fact, vec![Dim::new(d1, "k1"), Dim::new(d2, "k2")])
    }
}

fn arb_star() -> impl Strategy<Value = RandomStar> {
    // Row count 0..40 (covering rows < threads and the empty table),
    // dimension cardinalities 1..8.
    (0usize..40, 1usize..8, 1usize..8)
        .prop_flat_map(|(rows, c1, c2)| {
            (
                proptest::collection::vec(0i64..(c1 as i64 + 1), rows..(rows + 1)),
                proptest::collection::vec(0i64..(c2 as i64 + 1), rows..(rows + 1)),
                proptest::collection::vec(-2.0f64..2.0, rows..(rows + 1)),
                proptest::collection::vec(-2.0f64..2.0, rows..(rows + 1)),
                proptest::collection::vec(-2.0f64..2.0, c1..(c1 + 1)),
                proptest::collection::vec(-2.0f64..2.0, c2..(c2 + 1)),
            )
        })
        .prop_map(|(k1, k2, x, y, a, b)| RandomStar { k1, k2, x, y, a, b })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Chunked merging over any chunk size and thread count equals the
    /// one-shot accumulation of the same data within fp tolerance, and is
    /// *exactly* thread-invariant for a fixed chunk size.
    #[test]
    fn chunked_sum_equals_one_shot(
        data in proptest::collection::vec(-1.0e3f64..1.0e3, 0..200),
        chunk_rows in 1usize..64,
        threads in 1usize..9,
    ) {
        let one_shot: f64 = data.iter().sum();
        let shard = |r: std::ops::Range<usize>| vec![data[r].iter().sum::<f64>()];
        let chunked = run_chunked_sums(&cfg(threads, chunk_rows), data.len(), 1, shard);
        let serial = run_chunked_sums(&cfg(1, chunk_rows), data.len(), 1, shard);
        // Exact thread invariance at fixed chunk layout…
        prop_assert_eq!(&chunked, &serial);
        // …and agreement with the unchunked association within tolerance.
        prop_assert!(
            (chunked[0] - one_shot).abs() <= 1e-9 * (1.0 + one_shot.abs()),
            "chunked {} vs one-shot {}", chunked[0], one_shot
        );
    }

    /// Wide partial vectors merge element-wise in chunk order: each lane
    /// behaves like an independent chunked sum.
    #[test]
    fn multi_lane_merge_is_per_lane(
        data in proptest::collection::vec((-9.0f64..9.0, -9.0f64..9.0), 0..120),
        chunk_rows in 1usize..40,
        threads in 1usize..9,
    ) {
        let shard = |r: std::ops::Range<usize>| {
            let mut p = vec![0.0; 2];
            for (u, v) in &data[r] {
                p[0] += u;
                p[1] += v * v;
            }
            p
        };
        let merged = run_chunked_sums(&cfg(threads, chunk_rows), data.len(), 2, shard);
        let lane0 = run_chunked_sums(&cfg(1, chunk_rows), data.len(), 1, |r| {
            vec![data[r].iter().map(|(u, _)| u).sum::<f64>()]
        });
        let lane1 = run_chunked_sums(&cfg(1, chunk_rows), data.len(), 1, |r| {
            vec![data[r].iter().map(|(_, v)| v * v).sum::<f64>()]
        });
        prop_assert_eq!(merged[0].to_bits(), lane0[0].to_bits());
        prop_assert_eq!(merged[1].to_bits(), lane1[0].to_bits());
    }

    /// The generic fold visits every chunk exactly once, in ascending
    /// order, with ranges that tile `0..n` — for any (n, chunk, threads),
    /// including n = 0 (no chunks) and n < threads.
    #[test]
    fn chunks_tile_the_input(
        n in 0usize..300,
        chunk_rows in 1usize..50,
        threads in 1usize..9,
    ) {
        let starts = run_chunked(
            &cfg(threads, chunk_rows),
            n,
            Vec::new(),
            |r| vec![(r.start, r.end)],
            |acc: &mut Vec<(usize, usize)>, p| acc.extend(p),
        );
        let mut expect_start = 0;
        for &(s, e) in &starts {
            prop_assert_eq!(s, expect_start);
            prop_assert!(e > s && e <= n);
            expect_start = e;
        }
        prop_assert_eq!(expect_start, n);
    }

    /// Random star databases: the sharded merged-view executor agrees
    /// with its own sequential baseline exactly (any threads × chunk
    /// size) and with the materialized reference within tolerance.
    #[test]
    fn random_star_db_executors_agree(
        star in arb_star(),
        chunk_rows in 1usize..32,
        threads in 2usize..9,
    ) {
        let db = star.db();
        let cat = db.catalog();
        let tree = JoinTree::build_with_root(&cat, "F", &["D1", "D2"]).unwrap();
        let batch = covar_batch(&["a", "b", "x"], "y");
        let plan = ViewPlan::plan(&batch, &tree, &cat).unwrap();
        let baseline = exec_merged_cfg(&plan, &db, &cfg(1, chunk_rows));
        let sharded = exec_merged_cfg(&plan, &db, &cfg(threads, chunk_rows));
        prop_assert_eq!(&baseline, &sharded);
        let reference = exec_materialized_cfg(&plan, &db, &ExecConfig::serial());
        for (t, (p, q)) in baseline.iter().zip(&reference).enumerate() {
            prop_assert!(
                (p - q).abs() <= 1e-9 * (1.0 + p.abs().max(q.abs())),
                "term {}: merged {} vs materialized {}", t, p, q
            );
        }
    }
}
