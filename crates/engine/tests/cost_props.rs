//! Property tests for the static estimators in `ifaq_ir::cost`, checked
//! against the interpreter's reference semantics:
//!
//! - `estimate_size` is an exact-or-upper bound of the interpreted
//!   collection size on literal-backed expressions (set/dict literals
//!   dedup at runtime, and `if` estimates take the larger branch, so the
//!   static count can only overshoot — never undershoot);
//! - `estimate_cost` is monotone under `Sum` and `Let` wrapping;
//! - deeply nested unknown-size loops saturate instead of wrapping.

use ifaq_engine::interp::eval_expr;
use ifaq_ir::cost::{estimate_cost, estimate_size, DEFAULT_COLLECTION_SIZE};
use ifaq_ir::{Catalog, Expr};
use ifaq_storage::Value;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Literal-backed collection shapes: everything `estimate_size` claims to
/// know, buildable without a catalog or an environment.
#[derive(Clone, Debug)]
enum Coll {
    /// `[| … |]` of integer literals (duplicates collapse at runtime).
    Set(Vec<i64>),
    /// `{| k -> v |}` of integer literals (duplicate keys collapse, and
    /// the sparse-tensor semantics drop zero-valued entries — values are
    /// generated nonzero so only key collisions shrink the dict).
    Dict(Vec<(i64, i64)>),
    /// `dom({| … |})`.
    DomOf(Vec<(i64, i64)>),
    /// `if <bool-literal> then A else B`.
    If(bool, Box<Coll>, Box<Coll>),
    /// `let __unused = 0 in A`.
    Let(Box<Coll>),
}

impl Coll {
    fn expr(&self) -> Expr {
        match self {
            Coll::Set(xs) => Expr::set_lit(xs.iter().map(|&x| Expr::int(x)).collect()),
            Coll::Dict(kvs) => Expr::dict_lit(
                kvs.iter()
                    .map(|&(k, v)| (Expr::int(k), Expr::int(v)))
                    .collect(),
            ),
            Coll::DomOf(kvs) => Expr::dom(Coll::Dict(kvs.clone()).expr()),
            Coll::If(c, a, b) => Expr::if_(Expr::bool(*c), a.expr(), b.expr()),
            Coll::Let(inner) => Expr::let_("__unused", Expr::int(0), inner.expr()),
        }
    }

    /// True when the static estimate must be *exact*: every literal
    /// element (or key) distinct, and no `if` (whose estimate takes the
    /// larger branch regardless of the literal condition).
    fn exact(&self) -> bool {
        fn uniq<T: Ord + Clone>(xs: Vec<T>) -> bool {
            let n = xs.len();
            let mut s = xs;
            s.sort();
            s.dedup();
            s.len() == n
        }
        match self {
            Coll::Set(xs) => uniq(xs.clone()),
            Coll::Dict(kvs) | Coll::DomOf(kvs) => {
                uniq(kvs.iter().map(|&(k, _)| k).collect::<Vec<_>>())
            }
            Coll::If(..) => false,
            Coll::Let(inner) => inner.exact(),
        }
    }
}

fn value_len(v: &Value) -> usize {
    match v {
        Value::Set(s) => s.len(),
        Value::Dict(d) => d.len(),
        other => panic!("not a collection value: {other:?}"),
    }
}

fn arb_coll() -> impl Strategy<Value = Coll> {
    let set = proptest::collection::vec(0i64..6, 0..5).prop_map(Coll::Set);
    let dict = proptest::collection::vec((0i64..6, 1i64..100), 0..5).prop_map(Coll::Dict);
    let dom = proptest::collection::vec((0i64..6, 1i64..100), 0..5).prop_map(Coll::DomOf);
    prop_oneof![set, dict, dom].prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (proptest::bool::ANY, inner.clone(), inner.clone()).prop_map(|(c, a, b)| Coll::If(
                c,
                Box::new(a),
                Box::new(b)
            )),
            inner.prop_map(|i| Coll::Let(Box::new(i))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn estimate_size_bounds_the_interpreted_size(spec in arb_coll()) {
        let cat = Catalog::new();
        let e = spec.expr();
        let est = estimate_size(&e, &cat);
        prop_assert!(est.is_some(), "no estimate for literal-backed {:?}", spec);
        let est = est.unwrap();
        let v = eval_expr(&BTreeMap::new(), &e).expect("literal-backed expression evaluates");
        let actual = value_len(&v) as u64;
        prop_assert!(
            est >= actual,
            "estimate {} undershoots interpreted size {} for {:?}",
            est, actual, spec
        );
        if spec.exact() {
            prop_assert_eq!(est, actual, "dedup-free spec should estimate exactly: {:?}", spec);
        }
    }

    #[test]
    fn sum_wrapping_is_monotone(spec in arb_coll(), k in 1i64..5) {
        let cat = Catalog::new();
        let coll = spec.expr();
        let body = Expr::mul(Expr::var("x"), Expr::int(k));
        let wrapped = Expr::sum("x", coll.clone(), body.clone());
        let cost = estimate_cost(&wrapped, &cat);
        prop_assert!(
            cost >= estimate_cost(&coll, &cat),
            "sum cheaper than evaluating its own collection: {:?}", spec
        );
        let n = estimate_size(&coll, &cat).expect("literal-backed");
        prop_assert!(cost >= n, "loop cost {} below element count {}", cost, n);
        if n >= 1 {
            prop_assert!(
                cost >= estimate_cost(&body, &cat),
                "non-empty sum cheaper than one body evaluation: {:?}", spec
            );
        }
    }

    #[test]
    fn let_wrapping_never_reduces_cost(spec in arb_coll(), v in 0i64..100) {
        let cat = Catalog::new();
        let e = spec.expr();
        let base = estimate_cost(&e, &cat);
        let wrapped = Expr::let_("y", Expr::int(v), e);
        prop_assert!(
            estimate_cost(&wrapped, &cat) >= base,
            "let-wrapping reduced cost for {:?}", spec
        );
    }

    #[test]
    fn nested_unknown_sums_saturate(depth in 1usize..12) {
        // Each level multiplies by DEFAULT_COLLECTION_SIZE (the unknown-
        // collection fallback); by depth 4 the product exceeds u64, so
        // this is the saturating-arithmetic path: cost must stay monotone
        // in depth and never wrap around.
        let cat = Catalog::new();
        let mut e = Expr::int(1);
        let mut prev = 0u64;
        for level in 0..depth {
            e = Expr::sum("x", Expr::var(format!("mystery{level}")), e);
            let cost = estimate_cost(&e, &cat);
            prop_assert!(cost >= prev, "cost wrapped at nesting depth {}", level + 1);
            prop_assert!(cost >= DEFAULT_COLLECTION_SIZE);
            prev = cost;
        }
    }
}
