//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored stub
//! re-implements the slice of proptest the workspace's property tests use:
//!
//! - the [`Strategy`] trait with `prop_map`, `prop_recursive`, and `boxed`;
//! - strategies for integer/float ranges, `bool::ANY`, [`Just`], tuples,
//!   `collection::vec`, and simple `[a-z]{m,n}`-style string patterns;
//! - the `prop_oneof!`, `proptest!`, `prop_assert!`, and `prop_assert_eq!`
//!   macros, plus `ProptestConfig::with_cases`.
//!
//! Differences from real proptest: generation is seeded deterministically
//! (every run explores the same cases), and failing cases are reported but
//! **not shrunk**. Both are acceptable for a CI gate; swap back to the
//! real crate when a registry is reachable.

use std::ops::Range;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RNG handed to strategies. Wraps the deterministic [`StdRng`] stub.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn deterministic() -> Self {
        TestRng(StdRng::seed_from_u64(0x1FA9_2020))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.gen()
    }

    pub fn next_f64(&mut self) -> f64 {
        self.0.gen()
    }

    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "TestRng::below(0)");
        self.0.gen_range(0..n)
    }
}

/// Error type returned by `prop_assert!`-style macros inside a test body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of random values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply produces a value from an RNG.
pub trait Strategy: 'static {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` derives from
    /// it (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Build a recursive strategy: `self` generates leaves, and `expand`
    /// wraps a strategy for depth `d` into one for depth `d + 1`. The
    /// `_desired_size` / `_expected_branch` hints are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        expand: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let expand: ExpandFn<Self::Value> = Arc::new(move |s| expand(s).boxed());
        // Pre-build one strategy per nesting depth (0 = leaf only). At
        // generation time a depth is drawn uniformly, so shallow values —
        // including bare leaves — keep appearing alongside deep ones
        // (real proptest likewise mixes recursion depths).
        let mut towers = vec![self.boxed()];
        for d in 0..depth as usize {
            towers.push(expand(towers[d].clone()));
        }
        Recursive { towers }
    }

    /// Type-erase into a cloneable, shareable strategy handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// One layer of a recursive strategy: wraps a depth-`d` strategy into a
/// depth-`d + 1` strategy.
type ExpandFn<T> = Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>;

/// Object-safe view of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Cloneable type-erased strategy (the stub's analogue of proptest's
/// `BoxedStrategy`).
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + 'static,
    U: 'static,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + 'static,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    /// `towers[d]` generates values nested at most `d` levels.
    towers: Vec<BoxedStrategy<T>>,
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let d = rng.below(self.towers.len());
        self.towers[d].generate(rng)
    }
}

/// Uniform choice among same-typed strategies; backs `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: 'static> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end);
        self.start + (rng.next_u64() % (self.end - self.start) as u64) as i64
    }
}

impl Strategy for Range<i32> {
    type Value = i32;

    fn generate(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end);
        self.start + (rng.next_u64() % (self.end - self.start) as u64) as i32
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end);
        self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end);
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// String strategies from `&'static str` patterns, as in real proptest —
/// restricted to the tiny regex subset the workspace uses: a literal, or a
/// single character class with a bounded repetition, e.g. `"[a-z]{1,4}"`.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi, min, max) = parse_class_pattern(self).unwrap_or_else(|| {
            panic!("unsupported string pattern {self:?} (stub supports `[x-y]{{m,n}}` only)")
        });
        let len = min + rng.below(max - min + 1);
        (0..len)
            .map(|_| {
                let span = (hi as u32 - lo as u32 + 1) as usize;
                char::from_u32(lo as u32 + rng.below(span) as u32).unwrap()
            })
            .collect()
    }
}

/// Parse `[x-y]{m,n}` → `(x, y, m, n)`. Returns `None` for anything else.
fn parse_class_pattern(pat: &str) -> Option<(char, char, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut chars = class.chars();
    let (lo, dash, hi) = (chars.next()?, chars.next()?, chars.next()?);
    if dash != '-' || chars.next().is_some() || lo > hi {
        return None;
    }
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = counts.split_once(',')?;
    let (min, max) = (min.parse().ok()?, max.parse().ok()?);
    if min > max {
        return None;
    }
    Some((lo, hi, min, max))
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);

pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy for booleans, mirroring `proptest::bool::ANY`.
    #[derive(Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Collection size specification: a fixed length or a half-open range,
    /// mirroring `proptest::collection::SizeRange`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            assert!(self.min < self.max_exclusive, "empty size range");
            self.min + rng.below(self.max_exclusive - self.min)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy for vectors with a length drawn from `len`, mirroring
    /// `proptest::collection::vec`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with a *target* size drawn from `len`,
    /// mirroring `proptest::collection::btree_set` (duplicates collapse,
    /// so like the real crate the set can come out smaller).
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        len: SizeRange,
    }

    pub fn btree_set<S>(element: S, len: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Runner configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub mod prelude {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        Strategy, TestCaseError,
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l, r, format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
}

/// The `proptest!` test-declaration macro. Supports an optional leading
/// `#![proptest_config(..)]`, then any number of test functions of the
/// form `fn name(binding in strategy, ...) { body }` (attributes,
/// including `#[test]` and doc comments, pass through).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($binding:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::TestRng::deterministic();
                // Build each strategy once; the loop below shadows the
                // strategy binding with the generated value per case.
                let ($(ref $binding,)+) = ($($crate::Strategy::boxed($strategy),)+);
                for case in 0..config.cases {
                    $(let $binding = $crate::Strategy::generate($binding, &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!("proptest case {case} failed: {err}");
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn oneof_and_map_compose() {
        let s = prop_oneof![(0i64..5).prop_map(|x| x * 2), Just(99i64)];
        let mut rng = crate::TestRng::deterministic();
        let mut saw_even = false;
        let mut saw_just = false;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            if v == 99 {
                saw_just = true;
            } else {
                assert!(v % 2 == 0 && (0..10).contains(&v));
                saw_even = true;
            }
        }
        assert!(saw_even && saw_just);
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Clone, Debug, PartialEq)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        let s = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
            });
        let mut rng = crate::TestRng::deterministic();
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut saw_leaf = false;
        let mut saw_deep = false;
        for _ in 0..200 {
            let d = depth(&s.generate(&mut rng));
            assert!(d <= 4);
            saw_leaf |= d == 1;
            saw_deep |= d > 2;
        }
        // Shallow and deep values must both keep appearing; a fixed
        // expand-tower would never generate bare leaves.
        assert!(saw_leaf && saw_deep);
    }

    #[test]
    fn string_patterns_match_class_and_length() {
        let mut rng = crate::TestRng::deterministic();
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,4}", &mut rng);
            assert!((1..=4).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(x in 0i64..100) {
            prop_assert!(x >= 0, "x was {}", x);
            prop_assert_eq!(x, x);
        }
    }
}
