//! Minimal offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored stub
//! re-implements the slice of criterion the workspace benches use:
//! `Criterion::{bench_function, benchmark_group}`, `BenchmarkGroup::
//! {bench_function, bench_with_input, finish}`, `BenchmarkId`, `Bencher::
//! iter`, `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: after a short calibration run, each
//! benchmark executes enough iterations to cover a fixed measurement
//! window and reports the mean wall-clock time per iteration. No
//! statistics, plotting, or CLI parsing — just honest timings, so
//! `cargo bench` works end to end offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps its usual meaning.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

const CALIBRATION: Duration = Duration::from_millis(50);
const MEASUREMENT: Duration = Duration::from_millis(300);

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// Identifier for a parameterized benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes its sample from a
    /// fixed measurement window instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(&label, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Anything convertible to a [`BenchmarkId`] (criterion accepts both ids
/// and plain strings).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Passed to the benchmark closure; `iter` does the actual timing.
pub struct Bencher {
    result: Option<Sample>,
}

struct Sample {
    iters: u64,
    total: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: find how many iterations fit the measurement window.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= CALIBRATION {
                let per_iter = elapsed / iters as u32;
                let target = (MEASUREMENT.as_nanos() / per_iter.as_nanos().max(1)) as u64;
                iters = target.clamp(1, 1_000_000_000);
                break;
            }
            iters = iters.saturating_mul(2);
        }
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.result = Some(Sample {
            iters,
            total: start.elapsed(),
        });
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut bencher = Bencher { result: None };
    f(&mut bencher);
    match bencher.result {
        Some(Sample { iters, total }) => {
            let per_iter = total.as_secs_f64() / iters as f64;
            println!("{label:<50} time: {} ({iters} iters)", human_time(per_iter));
        }
        None => println!("{label:<50} (no measurement: bencher.iter never called)"),
    }
}

fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs each group, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_a_sample() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_bench_with_input_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter("p"), &3u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
