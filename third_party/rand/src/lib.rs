//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored stub
//! implements exactly the API surface the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_bool, gen_range}` over
//! integer and float ranges. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic for a given seed across platforms, which is
//! all the datagen crate needs (it always seeds explicitly).

use std::ops::{Range, RangeInclusive};

/// Core RNG abstraction: everything derives from a 64-bit output stream.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling front-end, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value via the "standard" distribution for its type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::sample(self) < p
    }

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Mirrors `rand::SeedableRng`, reduced to the one constructor used here.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types sampleable from the standard distribution (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (`rng.gen_range(..)`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is ≤ span/2^64, far below what synthetic data
                // generation can observe; keep the stub simple.
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = f64::sample(rng) as $t;
                let x = self.start + unit * (self.end - self.start);
                // start + unit*span can round up to exactly `end`; keep
                // the half-open contract.
                if x < self.end {
                    x
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as the real rand crate does for
            // seed_from_u64.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let i = rng.gen_range(0..2);
            assert!((0..2).contains(&i));
            let j = rng.gen_range(1..18);
            assert!((1..18).contains(&j));
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn float_range_stays_half_open_despite_rounding() {
        // start + unit*span rounds to `end` for unit near 1.0 here; the
        // result must still be < end.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100_000 {
            let x = rng.gen_range(1e16..1e16 + 2.0);
            assert!((1e16..1e16 + 2.0).contains(&x), "x={x}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.08)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.08).abs() < 0.01, "rate={rate}");
    }
}
