//! Property tests for the language layer: parser/pretty-printer round
//! trips on random expressions, and agreement between the static S-IFAQ
//! type checker and the dynamic interpreter (well-typed terms don't go
//! wrong).

use ifaq_engine::interp::{eval_expr, Env};
use ifaq_ir::parser::parse_expr;
use ifaq_ir::types::{TypeChecker, TypeEnv};
use ifaq_ir::{Expr, Type};
use ifaq_storage::Value;
use proptest::prelude::*;

/// Random expressions spanning every syntactic construct, closed except
/// for the variables `a: int` and `d: Map[int, int]`.
fn arb_syntax() -> impl Strategy<Value = Expr> {
    // Literals are non-negative: `-1` prints as the token sequence `-` `1`
    // and reparses as `Neg(1)`, so negative values arise via `Expr::neg`.
    let leaf = prop_oneof![
        (0i64..9).prop_map(Expr::int),
        (0.0f64..2.0).prop_map(Expr::real),
        proptest::bool::ANY.prop_map(Expr::bool),
        "[a-z]{1,4}".prop_map(Expr::str),
        "[a-z]{1,3}".prop_map(Expr::field_const),
        Just(Expr::var("a")),
        Just(Expr::var("d")),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::add(x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::mul(x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::sub(x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::div(x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::and(
                Expr::cmp(ifaq_ir::CmpOp::Lt, x, Expr::int(3)),
                Expr::cmp(ifaq_ir::CmpOp::Ne, y, Expr::int(0)),
            )),
            inner.clone().prop_map(Expr::neg),
            inner.clone().prop_map(|x| Expr::un(ifaq_ir::UnOp::Abs, x)),
            inner
                .clone()
                .prop_map(|b| Expr::sum("x", Expr::var("d"), b)),
            inner
                .clone()
                .prop_map(|b| Expr::dict_comp("k", Expr::var("d"), b)),
            inner
                .clone()
                .prop_map(|x| Expr::dom(Expr::dict_single(x, Expr::int(1)))),
            (inner.clone(), inner.clone()).prop_map(|(k, v)| Expr::dict_single(k, v)),
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Expr::set_lit),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::record([("f", x), ("g", y)])),
            inner.clone().prop_map(|x| Expr::variant("tag", x)),
            inner
                .clone()
                .prop_map(|x| Expr::get(Expr::record([("h", x)]), "h")),
            (inner.clone(), inner.clone()).prop_map(|(v, b)| Expr::let_("t", v, b)),
            (inner.clone(), inner.clone()).prop_map(|(t, e)| Expr::if_(Expr::bool(true), t, e)),
            (inner.clone(), inner)
                .prop_map(|(f, k)| Expr::apply(Expr::dict_single(Expr::int(0), f), k)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse(print(e)) == e` for arbitrary expressions — the printer
    /// emits exactly the grammar the parser accepts, with correct
    /// precedence and parenthesization.
    #[test]
    fn pretty_print_parse_roundtrip(e in arb_syntax()) {
        let printed = e.to_string();
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("{err}\nprinted: {printed}"));
        prop_assert_eq!(&reparsed, &e, "printed: {}", printed);
    }

    /// Well-typed S-IFAQ expressions evaluate without runtime type errors
    /// (progress + preservation, observed end-to-end): if the checker
    /// accepts a closed term, the interpreter produces a value.
    #[test]
    fn well_typed_terms_do_not_go_wrong(e in arb_syntax()) {
        let mut tenv = TypeEnv::new();
        tenv.insert("a".into(), Type::Int);
        tenv.insert("d".into(), Type::dict(Type::Int, Type::Int));
        let checker = TypeChecker::new();
        if checker.infer(&tenv, &e).is_ok() {
            let mut env = Env::new();
            env.insert("a".into(), Value::Int(2));
            env.insert(
                "d".into(),
                Value::Dict(ifaq_storage::Dict::from_pairs(vec![
                    (Value::Int(1), Value::Int(10)),
                    (Value::Int(2), Value::Int(20)),
                ])),
            );
            let result = eval_expr(&env, &e);
            // Division can still hit NaN/∞ (a *value* error, not a type
            // error); everything else must produce a value.
            prop_assert!(
                result.is_ok(),
                "well-typed term failed: {} — {:?}",
                e,
                result
            );
        }
    }

    /// The AST size metric is consistent under the round trip.
    #[test]
    fn node_count_stable_under_roundtrip(e in arb_syntax()) {
        let reparsed = parse_expr(&e.to_string()).unwrap();
        prop_assert_eq!(reparsed.node_count(), e.node_count());
    }
}
