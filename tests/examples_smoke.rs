//! Smoke test for the repo-level `examples/`: all five must compile, and
//! `quickstart` and `churn_or_promo` must run to completion.
//!
//! Shells out to the same `cargo` that is running this test. Nested cargo
//! invocations are safe here: the outer process does not hold the build
//! lock while tests execute, and the examples share this workspace's
//! `target/` directory, so repeat runs are incremental.

use std::path::Path;
use std::process::Command;

fn cargo() -> Command {
    let mut cmd = Command::new(env!("CARGO"));
    cmd.current_dir(Path::new(env!("CARGO_MANIFEST_DIR")));
    cmd
}

#[test]
fn all_examples_compile() {
    let output = cargo()
        .args(["build", "--examples", "--offline"])
        .output()
        .expect("failed to spawn cargo");
    assert!(
        output.status.success(),
        "`cargo build --examples` failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn quickstart_runs_to_completion() {
    let output = cargo()
        .args(["run", "--example", "quickstart", "--offline"])
        .output()
        .expect("failed to spawn cargo");
    assert!(
        output.status.success(),
        "`cargo run --example quickstart` failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("trained parameters"),
        "quickstart did not reach its final output; stdout:\n{stdout}"
    );
}

#[test]
fn churn_or_promo_runs_to_completion() {
    let output = cargo()
        .args(["run", "--example", "churn_or_promo", "--offline"])
        .output()
        .expect("failed to spawn cargo");
    assert!(
        output.status.success(),
        "`cargo run --example churn_or_promo` failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("trained logistic model"),
        "churn_or_promo did not reach its final output; stdout:\n{stdout}"
    );
}
