//! Property tests: every rewrite stage preserves interpreter semantics on
//! randomly generated expressions and databases, and the physical engines
//! agree on randomly generated star schemas.

use ifaq_engine::interp::{eval_expr, Env};
use ifaq_engine::star::{Dim, StarDb};
use ifaq_engine::Layout;
use ifaq_ir::schema::running_example_catalog;
use ifaq_ir::Expr;
use ifaq_storage::{ColRelation, Column, Value};
use ifaq_transform::{factorize, generic, licm, normalize, parteval};
use proptest::prelude::*;

/// Random arithmetic/sum expressions over a small environment with
/// variables `a`, `b` (ints) and collection `C` (a set of ints).
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(Expr::int),
        Just(Expr::var("a")),
        Just(Expr::var("b")),
    ];
    leaf.prop_recursive(4, 64, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::add(x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::mul(x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::sub(x, y)),
            inner.clone().prop_map(Expr::neg),
            inner
                .clone()
                .prop_map(|b| Expr::sum("x", Expr::var("C"), b)),
            // Bodies that use the bound variable.
            inner.clone().prop_map(|b| Expr::sum(
                "x",
                Expr::var("C"),
                Expr::mul(Expr::var("x"), b)
            )),
            (inner.clone(), inner).prop_map(|(v, b)| Expr::let_("t", v, b)),
        ]
    })
}

fn env(a: i64, b: i64, coll: &[i64]) -> Env {
    let mut e = Env::new();
    e.insert("a".into(), Value::Int(a));
    e.insert("b".into(), Value::Int(b));
    e.insert(
        "C".into(),
        Value::Set(coll.iter().map(|&v| Value::Int(v)).collect()),
    );
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn normalization_preserves_semantics(
        e in arb_expr(), a in -5i64..5, b in -5i64..5,
        coll in proptest::collection::btree_set(-4i64..4, 0..5)
    ) {
        let coll: Vec<i64> = coll.into_iter().collect();
        let env = env(a, b, &coll);
        let before = eval_expr(&env, &e);
        let (e2, _) = normalize::normalize(&e);
        let after = eval_expr(&env, &e2);
        prop_assert_eq!(before, after);
    }

    #[test]
    fn factorization_preserves_semantics(
        e in arb_expr(), a in -5i64..5, b in -5i64..5,
        coll in proptest::collection::btree_set(-4i64..4, 0..5)
    ) {
        let coll: Vec<i64> = coll.into_iter().collect();
        let env = env(a, b, &coll);
        // Factorization runs on normalized input, as in the pipeline.
        let (e1, _) = normalize::normalize(&e);
        let before = eval_expr(&env, &e1);
        let (e2, _) = factorize::factorize(&e1);
        let after = eval_expr(&env, &e2);
        prop_assert_eq!(before, after);
    }

    #[test]
    fn licm_and_generic_preserve_semantics(
        e in arb_expr(), a in -5i64..5, b in -5i64..5,
        coll in proptest::collection::btree_set(-4i64..4, 0..5)
    ) {
        let coll: Vec<i64> = coll.into_iter().collect();
        let env = env(a, b, &coll);
        let before = eval_expr(&env, &e);
        let (e2, _) = licm::licm_expr(&e);
        prop_assert_eq!(before.clone(), eval_expr(&env, &e2));
        let (e3, _) = generic::cleanup(&e2);
        prop_assert_eq!(before, eval_expr(&env, &e3));
    }

    #[test]
    fn partial_eval_preserves_semantics(
        e in arb_expr(), a in -5i64..5, b in -5i64..5,
        coll in proptest::collection::btree_set(-4i64..4, 0..5)
    ) {
        let coll: Vec<i64> = coll.into_iter().collect();
        let env = env(a, b, &coll);
        let before = eval_expr(&env, &e);
        let (e2, _) = parteval::partial_eval(&e);
        prop_assert_eq!(before, eval_expr(&env, &e2));
    }

    #[test]
    fn loop_scheduling_preserves_semantics(
        e in arb_expr(), a in -5i64..5, b in -5i64..5,
        coll in proptest::collection::btree_set(-4i64..4, 0..5)
    ) {
        let coll: Vec<i64> = coll.into_iter().collect();
        let env = env(a, b, &coll);
        let cat = running_example_catalog(100, 10, 5);
        let before = eval_expr(&env, &e);
        let (e2, _) = ifaq_transform::schedule::schedule(&e, &cat);
        prop_assert_eq!(before, eval_expr(&env, &e2));
    }
}

/// A random star database: one fact table with two key columns and one
/// measure, two dimensions with one payload each.
fn arb_star() -> impl Strategy<Value = StarDb> {
    let n = 1usize..40;
    (
        n,
        2usize..6,
        2usize..6,
        proptest::collection::vec(-3.0f64..3.0, 50),
        proptest::collection::vec(-3.0f64..3.0, 12),
    )
        .prop_flat_map(|(rows, nk1, nk2, measures, payloads)| {
            (
                proptest::collection::vec(0i64..(nk1 as i64 + 1), rows),
                proptest::collection::vec(0i64..(nk2 as i64), rows),
                Just((rows, nk1, nk2, measures, payloads)),
            )
        })
        .prop_map(|(k1, k2, (rows, nk1, nk2, measures, payloads))| {
            // k1 may reference a key one past the dimension: dangling rows
            // exercise inner-join drops.
            let fact = ColRelation::new(
                "F",
                vec!["d1".into(), "d2".into(), "m".into()],
                vec![
                    Column::I64(k1),
                    Column::I64(k2),
                    Column::F64(measures[..rows].to_vec()),
                ],
            );
            let dim1 = ColRelation::new(
                "D1",
                vec!["d1".into(), "p1".into()],
                vec![
                    Column::I64((0..nk1 as i64).collect()),
                    Column::F64(payloads[..nk1].to_vec()),
                ],
            );
            let dim2 = ColRelation::new(
                "D2",
                vec!["d2".into(), "p2".into()],
                vec![
                    Column::I64((0..nk2 as i64).collect()),
                    Column::F64(payloads[..nk2].to_vec()),
                ],
            );
            StarDb::new(fact, vec![Dim::new(dim1, "d1"), Dim::new(dim2, "d2")])
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engines_agree_on_random_stars(db in arb_star()) {
        use ifaq_query::batch::covar_batch;
        use ifaq_query::{JoinTree, ViewPlan};
        let cat = db.catalog();
        let tree = JoinTree::build_with_root(&cat, "F", &["D1", "D2"]).unwrap();
        let batch = covar_batch(&["p1", "p2"], "m");
        let plan = ViewPlan::plan(&batch, &tree, &cat).unwrap();
        let reference = ifaq_engine::layout::execute(
            Layout::Materialized,
            &plan,
            &db,
            &ifaq_engine::layout::prepare(Layout::Materialized, &plan, &db),
        );
        for &layout in Layout::all() {
            let prep = ifaq_engine::layout::prepare(layout, &plan, &db);
            let got = ifaq_engine::layout::execute(layout, &plan, &db, &prep);
            for (a, b) in reference.iter().zip(&got) {
                let tol = 1e-9 * (1.0 + a.abs().max(b.abs()));
                prop_assert!((a - b).abs() <= tol, "{:?}: {} vs {}", layout, a, b);
            }
        }
    }
}
