//! Differential tests for sharded execution: every physical executor, at
//! every parallelism level, must agree with the sequential baseline.
//!
//! The sharding model (see `ifaq_engine::par`) fixes the chunk layout and
//! the partial-merge order as a function of the data size and
//! `chunk_rows` alone, so for a fixed `chunk_rows` the comparison is
//! **exact** (`assert_eq!` on the `f64` vectors) at 1/2/3/8 threads —
//! there is no "parallel tolerance". Changing `chunk_rows` re-associates
//! the floating-point reduction; across *different* chunk sizes (and
//! across executors) results agree within the documented 1e-9 relative
//! tolerance instead.

use ifaq_datagen::{favorita, retailer, Dataset};
use ifaq_engine::layout::{execute_with, prepare, Prepared};
use ifaq_engine::{ExecConfig, Layout};
use ifaq_ml::logreg;
use ifaq_query::analysis;
use ifaq_query::batch::{covar_batch, variance_batch, AggBatch, PredOp, Predicate};
use ifaq_query::{JoinTree, ViewPlan};

/// Parallelism levels required by the acceptance criteria.
const THREADS: [usize; 4] = [1, 2, 3, 8];

fn plan_batch(ds: &Dataset, batch: &AggBatch) -> ViewPlan {
    let cat = ds.db.catalog();
    let tree = JoinTree::build(&cat, &ds.relation_names()).expect("join tree");
    ViewPlan::plan(batch, &tree, &cat).expect("view plan")
}

fn assert_close(layout: Layout, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())),
            "{layout}, term {i}: {x} vs {y}"
        );
    }
}

/// For every executor: the 1-thread run is the baseline; 2/3/8 threads
/// must reproduce it bit-for-bit at the same chunk size, and all
/// executors must agree with the materialized reference within tolerance.
fn check_all_executors(ds: &Dataset, batch: &AggBatch) {
    let plan = plan_batch(ds, batch);
    check_all_executors_with_plan(&ds.db, &plan);
}

fn check_all_executors_with_plan(db: &ifaq_engine::StarDb, plan: &ViewPlan) {
    let reference = {
        let prep = prepare(Layout::Materialized, plan, db);
        execute_with(
            Layout::Materialized,
            plan,
            db,
            &prep,
            &ExecConfig::with_threads(1),
        )
    };
    for &layout in Layout::all() {
        let prep: Prepared = prepare(layout, plan, db);
        let baseline = execute_with(layout, plan, db, &prep, &ExecConfig::with_threads(1));
        assert_close(layout, &baseline, &reference);
        for &threads in &THREADS[1..] {
            let got = execute_with(layout, plan, db, &prep, &ExecConfig::with_threads(threads));
            // Exact: fixed chunk layout ⇒ fixed reduction order.
            assert_eq!(
                baseline, got,
                "{layout} diverged from the sequential baseline at {threads} threads"
            );
        }
    }
}

/// Retailer has 35 features; the full covar batch (703 aggregates) would
/// drown the boxed executors in debug builds. A 4-feature slice exercises
/// the same code paths across all five relations.
fn retailer_features(ds: &Dataset) -> Vec<&str> {
    let mut f = ds.feature_refs();
    f.truncate(4);
    f
}

#[test]
fn favorita_covar_batch_every_executor_every_parallelism() {
    let ds = favorita(4_000, 42);
    let features = ds.feature_refs();
    let batch = covar_batch(&features, &ds.label);
    check_all_executors(&ds, &batch);
}

#[test]
fn retailer_covar_batch_every_executor_every_parallelism() {
    let ds = retailer(3_000, 43);
    let features = retailer_features(&ds);
    let batch = covar_batch(&features, &ds.label);
    check_all_executors(&ds, &batch);
}

#[test]
fn filtered_variance_batch_every_executor_every_parallelism() {
    // δ predicates route to both fact and dimension owners; make sure the
    // sharded scans respect them identically.
    let ds = favorita(3_000, 7);
    let delta = vec![
        Predicate::new("onpromotion", PredOp::Le, 0.5),
        Predicate::new("oilprice", PredOp::Gt, 40.0),
    ];
    let batch = variance_batch(&ds.label, &delta);
    check_all_executors(&ds, &batch);
}

#[test]
fn chunk_size_fixed_results_identical_across_thread_counts() {
    // The determinism guarantee holds for *any* chunk size, including
    // degenerate ones (1 row per chunk, chunks larger than the data).
    let ds = favorita(2_000, 11);
    let features = ds.feature_refs();
    let batch = covar_batch(&features, &ds.label);
    let plan = plan_batch(&ds, &batch);
    for chunk_rows in [1, 97, 100_000] {
        for &layout in Layout::all() {
            let prep = prepare(layout, &plan, &ds.db);
            let baseline = execute_with(
                layout,
                &plan,
                &ds.db,
                &prep,
                &ExecConfig::with_threads(1).with_chunk_rows(chunk_rows),
            );
            for &threads in &THREADS[1..] {
                let got = execute_with(
                    layout,
                    &plan,
                    &ds.db,
                    &prep,
                    &ExecConfig::with_threads(threads).with_chunk_rows(chunk_rows),
                );
                assert_eq!(
                    baseline, got,
                    "{layout}, chunk_rows {chunk_rows}, {threads} threads"
                );
            }
        }
    }
}

#[test]
fn chunk_size_changes_stay_within_documented_tolerance() {
    // Different chunk sizes re-associate the reduction; the ULP drift must
    // stay inside the 1e-9 relative tolerance the engines document.
    let ds = favorita(2_000, 11);
    let features = ds.feature_refs();
    let batch = covar_batch(&features, &ds.label);
    let plan = plan_batch(&ds, &batch);
    for &layout in Layout::all() {
        let prep = prepare(layout, &plan, &ds.db);
        let run = |chunk_rows: usize| {
            execute_with(
                layout,
                &plan,
                &ds.db,
                &prep,
                &ExecConfig::with_threads(2).with_chunk_rows(chunk_rows),
            )
        };
        let whole = run(100_000);
        for chunk_rows in [1, 64, 997] {
            assert_close(layout, &run(chunk_rows), &whole);
        }
    }
}

/// Logistic training re-runs its gradient batch (plus a sharded score
/// pass) every iteration, so it exercises the whole sharding stack far
/// harder than a single covar pass: the factorized path must match the
/// materialized reference to ≤1e-6 at every layout and at 1 and 4
/// threads, on both dataset shapes (the acceptance bar for the logistic
/// workload).
#[test]
fn logistic_factorized_matches_materialized_every_layout_and_parallelism() {
    for ds in [
        favorita(2_500, 42).binarize_label(),
        retailer(2_000, 43).binarize_label(),
    ] {
        let features: Vec<&str> = ds.feature_refs().into_iter().take(4).collect();
        let m = ds.db.materialize();
        let reference = logreg::fit_materialized(&m, &features, &ds.label, 0.5, 60);
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()));
        for &layout in Layout::all() {
            for threads in [1usize, 4] {
                let got = logreg::fit_factorized_cfg(
                    &ds.db,
                    &features,
                    &ds.label,
                    layout,
                    0.5,
                    60,
                    &ExecConfig::with_threads(threads),
                );
                assert!(
                    close(got.intercept, reference.intercept),
                    "{} {layout} t{threads}: intercept {} vs {}",
                    ds.name,
                    got.intercept,
                    reference.intercept
                );
                for ((a, b), f) in got.weights.iter().zip(&reference.weights).zip(&features) {
                    assert!(
                        close(*a, *b),
                        "{} {layout} t{threads} weight {f}: {a} vs {b}",
                        ds.name
                    );
                }
            }
        }
    }
}

/// The per-iteration passes inherit the chunk-model determinism: for a
/// fixed chunk size, logistic training is bit-identical at every thread
/// count (the score pass emits disjoint ranges merged in order; the
/// gradient batch uses the executors' guarantee).
#[test]
fn logistic_training_is_thread_count_invariant() {
    let ds = favorita(1_500, 11).binarize_label();
    let features = ds.feature_refs();
    for &layout in &[Layout::MergedHash, Layout::SortedTrie] {
        let run = |threads: usize| {
            logreg::fit_factorized_cfg(
                &ds.db,
                &features,
                &ds.label,
                layout,
                0.5,
                30,
                &ExecConfig::with_threads(threads),
            )
        };
        let base = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), base, "{layout} at {threads} threads");
        }
    }
}

/// The cost decision may pick *any* rung of the layout ladder without
/// changing answers: whatever `analysis::choose_layout` selects for a
/// bundled schema × workload pair, its results must match every other
/// layout within 1e-6 at 1 and 4 threads.
#[test]
fn cost_chosen_layout_matches_every_other_layout() {
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()));
    for ds in [favorita(3_000, 21), retailer(2_500, 22)] {
        let features = if ds.name.starts_with("retailer") {
            retailer_features(&ds)
        } else {
            ds.feature_refs()
        };
        let workloads: Vec<(&str, AggBatch)> = vec![
            ("covar", covar_batch(&features, &ds.label)),
            (
                "variance",
                variance_batch(&ds.label, &[Predicate::new(features[0], PredOp::Le, 1.0)]),
            ),
        ];
        for (wname, batch) in workloads {
            let cat = ds.db.catalog();
            let tree = JoinTree::build(&cat, &ds.relation_names()).expect("join tree");
            let plan = ViewPlan::plan(&batch, &tree, &cat).expect("view plan");
            let chosen = analysis::choose_layout(&cat, &plan);
            let chosen_prep = prepare(chosen, &plan, &ds.db);
            for threads in [1usize, 4] {
                let cfg = ExecConfig::with_threads(threads);
                let want = execute_with(chosen, &plan, &ds.db, &chosen_prep, &cfg);
                for &other in Layout::all() {
                    let prep = prepare(other, &plan, &ds.db);
                    let got = execute_with(other, &plan, &ds.db, &prep, &cfg);
                    assert_eq!(want.len(), got.len());
                    for (i, (x, y)) in want.iter().zip(&got).enumerate() {
                        assert!(
                            close(*x, *y),
                            "{} {wname} t{threads}: chosen {chosen} vs {other}, term {i}: \
                             {x} vs {y}",
                            ds.name
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn empty_and_tiny_fact_tables_are_safe_at_every_parallelism() {
    // Plan on the full dataset (tiny catalogs can degenerate the join
    // tree), then execute on truncated fact tables: zero chunks, and
    // fewer rows than threads.
    let ds = favorita(1_000, 3);
    let features = ds.feature_refs();
    let batch = covar_batch(&features, &ds.label);
    let plan = plan_batch(&ds, &batch);
    for rows in [0, 1, 5] {
        check_all_executors_with_plan(&ds.db.take_fact(rows), &plan);
    }
}
