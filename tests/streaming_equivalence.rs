//! Differential, fault-injection, and residency gates for out-of-core
//! streaming execution (`ifaq_engine::stream`).
//!
//! The headline claim is **bit-identity**: for any fixed
//! `ExecConfig::chunk_rows`, streaming the fact table from an on-disk
//! `IFAQTBL1` export through a layout's executor returns exactly the
//! `f64`s the resident executor returns — at every thread count, because
//! the resident sharding's chunk layout and ascending partial-merge
//! order depend only on the data size and `chunk_rows`, and the stream
//! reads the fact table in those very chunks. So every comparison here
//! is `assert_eq!` on the vectors, not a tolerance.
//!
//! On top of that: linear and logistic models trained entirely from the
//! export match their materialized-pipeline counterparts within 1e-6
//! (and their resident factorized counterparts bitwise), every disk
//! fault surfaces as a structured `ExportError` without panicking or
//! deadlocking the compute side, and a whole training run never holds
//! more than `READER_DEPTH + 2` chunks of the fact table in memory.

use ifaq_datagen::{favorita, retailer, Dataset};
use ifaq_engine::layout::{execute_with, prepare};
use ifaq_engine::stream::{
    execute_streaming, peak_live_chunks_ever, prepare_streaming, StreamSource, READER_DEPTH,
};
use ifaq_engine::{ExecConfig, Layout, StarDb};
use ifaq_ml::{linreg, logreg};
use ifaq_query::batch::covar_batch;
use ifaq_query::{JoinTree, ViewPlan};
use ifaq_storage::export::table_file_name;
use ifaq_storage::stream::ExportError;
use std::path::PathBuf;

/// Thread counts required by the acceptance criteria. The streamed
/// compute itself is single-threaded (I/O overlaps on the reader
/// thread); the point is that the *resident* result it must equal is the
/// same at every one of these.
const THREADS: [usize; 3] = [1, 4, 8];

/// Chunk sizes: a 1-row chunk, small primes that do not divide the row
/// counts, and one larger than every fact table (single-chunk stream).
const CHUNK_ROWS: [usize; 4] = [1, 7, 193, 1 << 20];

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ifaq_stream_eq_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn covar_plan(db: &StarDb, features: &[&str], label: &str) -> ViewPlan {
    let cat = db.catalog();
    let dim_names: Vec<&str> = db.dims.iter().map(|d| d.rel.name.as_str()).collect();
    let tree = JoinTree::build_with_root(&cat, db.fact.name.as_str(), &dim_names).unwrap();
    ViewPlan::plan(&covar_batch(features, label), &tree, &cat).unwrap()
}

/// The differential core: export `ds`, then for every layout × thread
/// count × chunk size, the streamed covar batch must bit-equal the
/// resident one.
fn check_streamed_equals_resident(ds: &Dataset, dirname: &str) {
    let features = ds.feature_refs();
    let plan = covar_plan(&ds.db, &features, &ds.label);
    let dir = tmpdir(dirname);
    ds.db.export_dir(&dir).unwrap();
    let src = StreamSource::open_dir(&dir).unwrap();
    assert_eq!(src.fact_rows(), ds.db.fact.len());
    for &layout in Layout::all() {
        let resident_prep = prepare(layout, &plan, &ds.db);
        let streamed_prep = prepare_streaming(layout, &plan, src.schema_db(), src.fact_rows());
        for &chunk_rows in &CHUNK_ROWS {
            let stream_cfg = ExecConfig::with_threads(1).with_chunk_rows(chunk_rows);
            let (streamed, stats) =
                execute_streaming(&plan, &src, &streamed_prep, &stream_cfg).unwrap();
            assert!(
                stats.peak_live_chunks <= READER_DEPTH + 2,
                "{layout} chunk_rows {chunk_rows}: {} live chunks",
                stats.peak_live_chunks
            );
            for &threads in &THREADS {
                let cfg = ExecConfig::with_threads(threads).with_chunk_rows(chunk_rows);
                let resident = execute_with(layout, &plan, &ds.db, &resident_prep, &cfg);
                assert_eq!(
                    streamed, resident,
                    "{}: {layout} × {threads} threads × chunk_rows {chunk_rows}",
                    ds.name
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn streamed_covar_bit_equals_resident_on_favorita() {
    // 1201 rows: prime-ish, so 7 and 193 both leave ragged tail chunks.
    check_streamed_equals_resident(&favorita(1_201, 41), "favorita");
}

#[test]
fn streamed_covar_bit_equals_resident_on_retailer() {
    check_streamed_equals_resident(&retailer(1_003, 42), "retailer");
}

#[test]
fn linreg_trained_from_stream_matches_materialized() {
    let ds = favorita(1_500, 43);
    let features = ds.feature_refs();
    let dir = tmpdir("linreg");
    ds.db.export_dir(&dir).unwrap();
    let src = StreamSource::open_dir(&dir).unwrap();
    let cfg = ExecConfig::with_threads(4).with_chunk_rows(97);
    let m = ds.db.materialize();
    let mat_moments = linreg::moments_from_matrix(&m, &features, &ds.label);
    let materialized = linreg::fit_bgd(&mat_moments, 0.5, 120);
    for layout in [Layout::MergedHash, Layout::SortedTrie, Layout::Pushdown] {
        // Bitwise vs the resident factorized path at the same chunk size…
        let resident =
            linreg::fit_factorized_cfg(&ds.db, &features, &ds.label, layout, 0.5, 120, &cfg);
        let streamed =
            linreg::fit_streamed(&src, &features, &ds.label, layout, 0.5, 120, &cfg).unwrap();
        assert_eq!(streamed, resident, "{layout}");
        // …and within 1e-6 of the conventional materialize-first model.
        assert!(
            (streamed.intercept - materialized.intercept).abs()
                <= 1e-6 * materialized.intercept.abs().max(1.0),
            "{layout}: intercept {} vs {}",
            streamed.intercept,
            materialized.intercept
        );
        for (a, b) in streamed.weights.iter().zip(&materialized.weights) {
            assert!(
                (a - b).abs() <= 1e-6 * b.abs().max(1.0),
                "{layout}: weight {a} vs {b}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn logreg_trained_from_stream_matches_materialized() {
    let ds = favorita(1_200, 44).binarize_label();
    let features: Vec<&str> = ds.feature_refs().into_iter().take(4).collect();
    let dir = tmpdir("logreg");
    ds.db.export_dir(&dir).unwrap();
    let src = StreamSource::open_dir(&dir).unwrap();
    let cfg = ExecConfig::with_threads(4).with_chunk_rows(131);
    let m = ds.db.materialize();
    let materialized = logreg::fit_materialized(&m, &features, &ds.label, 0.5, 60);
    for layout in [Layout::MergedHash, Layout::Array] {
        let resident =
            logreg::fit_factorized_cfg(&ds.db, &features, &ds.label, layout, 0.5, 60, &cfg);
        let streamed =
            logreg::fit_streamed(&src, &features, &ds.label, layout, 0.5, 60, &cfg).unwrap();
        assert_eq!(streamed, resident, "{layout}");
        assert!(
            (streamed.intercept - materialized.intercept).abs()
                <= 1e-6 * materialized.intercept.abs().max(1.0),
            "{layout}: intercept {} vs {}",
            streamed.intercept,
            materialized.intercept
        );
        for (a, b) in streamed.weights.iter().zip(&materialized.weights) {
            assert!(
                (a - b).abs() <= 1e-6 * b.abs().max(1.0),
                "{layout}: weight {a} vs {b}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn full_training_run_never_holds_the_fact_table() {
    // A complete linreg + logreg training run against the export, at a
    // chunk size that splits the fact table into far more chunks than
    // the reader pool holds — the fact table is never fully resident,
    // and the process-wide high-water mark proves the buffer stayed at
    // `chunk_rows × (READER_DEPTH + 2)` rows throughout.
    let ds = favorita(1_400, 45);
    let features = ds.feature_refs();
    let dir = tmpdir("bounded");
    ds.db.export_dir(&dir).unwrap();
    let src = StreamSource::open_dir(&dir).unwrap();
    let chunk_rows = 64;
    let total_chunks = src.fact_rows().div_ceil(chunk_rows);
    assert!(
        total_chunks > READER_DEPTH + 2,
        "test needs more chunks ({total_chunks}) than the pool bound"
    );
    let cfg = ExecConfig::with_threads(2).with_chunk_rows(chunk_rows);
    let lin = linreg::fit_streamed(
        &src,
        &features,
        &ds.label,
        Layout::MergedHash,
        0.5,
        40,
        &cfg,
    )
    .unwrap();
    assert!(lin.weights.iter().all(|w| w.is_finite()));
    let bin = ds.binarize_label();
    let bin_dir = tmpdir("bounded_bin");
    bin.db.export_dir(&bin_dir).unwrap();
    let bin_src = StreamSource::open_dir(&bin_dir).unwrap();
    let log = logreg::fit_streamed(
        &bin_src,
        &bin.feature_refs(),
        &bin.label,
        Layout::MergedHash,
        0.5,
        40,
        &cfg,
    )
    .unwrap();
    assert!(log.weights.iter().all(|w| w.is_finite()));
    // The bound held for every streamed pass of both training runs (and
    // anything else this process streamed): never more than the pool.
    let peak = peak_live_chunks_ever();
    assert!(
        0 < peak && peak <= READER_DEPTH + 2,
        "peak {peak} live chunks vs pool bound {}",
        READER_DEPTH + 2
    );
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&bin_dir).unwrap();
}

// ---------------------------------------------------------------------
// Fault injection: every disk-level failure is a structured ExportError,
// never a panic, and never a deadlock.
// ---------------------------------------------------------------------

fn export_running_example(name: &str) -> (PathBuf, StarDb, PathBuf) {
    let db = ifaq_engine::star::running_example_star();
    let dir = tmpdir(name);
    db.export_dir(&dir).unwrap();
    let fact_file = dir.join(table_file_name(db.fact.name.as_str()));
    (dir, db, fact_file)
}

#[test]
fn truncated_fact_file_is_a_structured_error() {
    let (dir, _, fact_file) = export_running_example("trunc");
    let bytes = std::fs::read(&fact_file).unwrap();
    std::fs::write(&fact_file, &bytes[..bytes.len() - 9]).unwrap();
    match StreamSource::open_dir(&dir) {
        Err(ExportError::Truncated { .. }) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bad_magic_is_a_structured_error() {
    let (dir, _, fact_file) = export_running_example("magic");
    let mut bytes = std::fs::read(&fact_file).unwrap();
    bytes[..8].copy_from_slice(b"NOTATBL1");
    std::fs::write(&fact_file, &bytes).unwrap();
    match StreamSource::open_dir(&dir) {
        Err(ExportError::BadMagic { .. }) => {}
        other => panic!("expected BadMagic, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn header_row_count_disagreeing_with_file_length_is_a_structured_error() {
    // Trailing garbage: the header parses cleanly but claims fewer bytes
    // than the file holds, so the open-time length audit refuses it.
    let (dir, _, fact_file) = export_running_example("rowcount");
    let mut bytes = std::fs::read(&fact_file).unwrap();
    bytes.extend_from_slice(&[0u8; 8]);
    std::fs::write(&fact_file, &bytes).unwrap();
    match StreamSource::open_dir(&dir) {
        Err(ExportError::RowCountMismatch { .. }) => {}
        other => panic!("expected RowCountMismatch, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn patched_row_count_is_a_structured_error() {
    // Rewriting the header's u64 row count desynchronizes the inline
    // per-column layout; wherever parsing trips, the result must be a
    // structured error, never a panic.
    let (dir, db, fact_file) = export_running_example("rowpatch");
    let mut bytes = std::fs::read(&fact_file).unwrap();
    let off = 8 + 4 + db.fact.name.as_str().len();
    let claimed = (db.fact.len() as u64 - 1).to_le_bytes();
    bytes[off..off + 8].copy_from_slice(&claimed);
    std::fs::write(&fact_file, &bytes).unwrap();
    match StreamSource::open_dir(&dir) {
        Err(
            ExportError::RowCountMismatch { .. }
            | ExportError::Truncated { .. }
            | ExportError::TruncatedHeader { .. },
        ) => {}
        other => panic!("expected a length/parse error, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_manifest_is_a_structured_error() {
    let (dir, _, _) = export_running_example("manifest");
    std::fs::write(
        dir.join("star.manifest"),
        "ifaq-star v1\nfact missing.ifaqtbl S extra-token\n",
    )
    .unwrap();
    match StreamSource::open_dir(&dir) {
        Err(ExportError::Manifest { .. }) => {}
        other => panic!("expected Manifest, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mid_stream_truncation_errors_without_deadlock() {
    // Open the source against a healthy export, then truncate the fact
    // file before executing: the reader thread's reopen fails, the error
    // crosses the channel, and the compute side returns it — no partial
    // results, no hang. (The reader thread exits after sending; dropping
    // the receiver would likewise unblock a parked sender.)
    let (dir, db, fact_file) = export_running_example("midstream");
    let src = StreamSource::open_dir(&dir).unwrap();
    let plan = covar_plan(&db, &["city", "price"], "units");
    let prep = prepare_streaming(Layout::MergedHash, &plan, src.schema_db(), src.fact_rows());
    let bytes = std::fs::read(&fact_file).unwrap();
    std::fs::write(&fact_file, &bytes[..bytes.len() - 8]).unwrap();
    let cfg = ExecConfig::with_threads(1).with_chunk_rows(2);
    match execute_streaming(&plan, &src, &prep, &cfg) {
        Err(ExportError::Truncated { .. }) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn file_changed_under_reader_is_a_structured_error() {
    // Replace the fact table with a *consistent* file of different shape
    // after the source captured its header: the reader's reopen succeeds
    // but the change check refuses to stream it.
    let (dir, db, _) = export_running_example("changed");
    let src = StreamSource::open_dir(&dir).unwrap();
    let plan = covar_plan(&db, &["city", "price"], "units");
    let prep = prepare_streaming(Layout::MergedHash, &plan, src.schema_db(), src.fact_rows());
    let shrunk = db.take_fact(db.fact.len() - 1);
    shrunk.export_dir(&dir).unwrap();
    let cfg = ExecConfig::with_threads(1).with_chunk_rows(2);
    match execute_streaming(&plan, &src, &prep, &cfg) {
        Err(ExportError::Changed { .. }) => {}
        other => panic!("expected Changed, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pipeline_streams_the_compiled_batch() {
    // `Compiled::run_batch_streamed` must agree bitwise with the resident
    // `run_batch_with`, and `execute_streamed` with `execute_with` —
    // planning over the export's schema database yields the same plan.
    use ifaq::pipeline::{CompileOptions, Pipeline};
    let db = ifaq_engine::star::running_example_star();
    let dir = tmpdir("pipeline");
    db.export_dir(&dir).unwrap();
    let src = StreamSource::open_dir(&dir).unwrap();
    let program = ifaq_ir::parser::parse_program("sum(x in dom(Q)) Q(x) * x.units").unwrap();
    let opts = CompileOptions::for_star_db(&db);
    let compiled = Pipeline::new(db.catalog())
        .compile(&program, &opts)
        .unwrap();
    let cfg = ExecConfig::with_threads(2).with_chunk_rows(3);
    for &layout in Layout::all() {
        assert_eq!(
            compiled.run_batch_streamed(&src, layout, &cfg).unwrap(),
            compiled.run_batch_with(&db, layout, &cfg).unwrap(),
            "{layout}"
        );
        assert_eq!(
            compiled.execute_streamed(&src, layout, &cfg).unwrap(),
            compiled.execute_with(&db, layout, &cfg).unwrap(),
            "{layout}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
