//! Differential tests for incremental maintenance on the paper-shaped
//! datasets: a resident [`ServeEngine`] absorbing random insert/delete
//! sequences must stay equivalent to rebuild-from-scratch over its own
//! resident database — for every physical layout and at 1 and 4 threads
//! — and batches that net to nothing must be *bitwise* no-ops, not
//! merely numerical ones. The model side gates the same way: a linear
//! refit is exactly `fit_bgd` over the maintained moments, and a
//! logistic warm refit is exactly `FactorizedTrainer::with_moments` +
//! `fit_warm` over the maintained logistic moments. Finally, prepared
//! state built before a delta must be rejected by the generation guard
//! with a panic naming both generations — even when the delta leaves
//! the row count unchanged, so the older shape guard cannot catch it.

use ifaq_datagen::{favorita, retailer, Dataset};
use ifaq_engine::layout::{execute_with, prepare};
use ifaq_engine::{ExecConfig, Layout};
use ifaq_ml::linreg::{fit_bgd, moments_from_batch};
use ifaq_ml::logreg::FactorizedTrainer;
use ifaq_query::batch::covar_batch;
use ifaq_query::{JoinTree, ViewPlan};
use ifaq_serve::{DeltaBatch, ServeConfig, ServeEngine};
use ifaq_storage::Column;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parallelism levels required by the acceptance criteria.
const THREADS: [usize; 2] = [1, 4];

/// Retailer has 35 features; a 4-feature slice keeps the boxed executors
/// fast in debug builds while exercising all five relations (same
/// convention as `tests/prepared_equivalence.rs`).
fn covar_features(ds: &Dataset) -> Vec<&str> {
    let mut f = ds.feature_refs();
    f.truncate(4);
    f
}

/// The fact table of a star database as plain `f64` rows (the mirror the
/// random edit sequences are drawn from and replayed against).
fn fact_rows(db: &ifaq_engine::StarDb) -> Vec<Vec<f64>> {
    (0..db.fact.len())
        .map(|i| db.fact.columns.iter().map(|c| c.get_f64(i)).collect())
        .collect()
}

/// Per-fact-column integer flags.
fn int_cols(db: &ifaq_engine::StarDb) -> Vec<bool> {
    db.fact
        .columns
        .iter()
        .map(|c| matches!(c, Column::I64(_)))
        .collect()
}

/// A random edit batch against the current mirror: inserts clone a
/// stored row's join keys (guaranteeing realistic joinability) with
/// perturbed measures; deletes remove stored rows by value. The mirror
/// is updated in step so later batches see the edited table.
fn random_batch(
    rng: &mut StdRng,
    mirror: &mut Vec<Vec<f64>>,
    ints: &[bool],
    inserts: usize,
    deletes: usize,
) -> DeltaBatch {
    let mut batch = DeltaBatch::new();
    for _ in 0..inserts {
        let base = mirror[rng.gen_range(0..mirror.len())].clone();
        let row: Vec<f64> = base
            .iter()
            .zip(ints)
            .map(|(&v, &is_int)| {
                if is_int {
                    v
                } else {
                    v + rng.gen_range(-1.0..1.0)
                }
            })
            .collect();
        mirror.push(row.clone());
        batch = batch.insert(row);
    }
    for _ in 0..deletes {
        let row = mirror.remove(rng.gen_range(0..mirror.len()));
        batch = batch.delete(row);
    }
    batch
}

/// For every layout × thread count: three rounds of random edits, each
/// gated against a from-scratch rebuild over the engine's own resident
/// database — totals within 1e-6 relative, joined-row count exact.
fn check_deltas_match_rebuild(ds: &Dataset, seed: u64) {
    let features = covar_features(ds);
    let train = ds.train();
    let ints = int_cols(&train);
    for (li, &layout) in Layout::all().iter().enumerate() {
        for &threads in &THREADS {
            let cfg = ServeConfig::new(layout).with_exec(ExecConfig::with_threads(threads));
            let engine = ServeEngine::new(train.clone(), &features, &ds.label, cfg.clone());
            let mut mirror = fact_rows(&train);
            let mut rng = StdRng::seed_from_u64(seed + 100 * li as u64 + threads as u64);
            let ci = engine.batch().index_of("count").unwrap();
            for round in 0..3 {
                let batch = random_batch(&mut rng, &mut mirror, &ints, 5, 3);
                // A delete may hit a row inserted earlier in the same
                // batch; the pair cancels, so only the net is fixed.
                let report = engine.apply_delta(&batch).expect("delta batch");
                assert_eq!(
                    report.inserted as i64 - report.deleted as i64,
                    2,
                    "{layout}/{threads}t round {round}: net change off"
                );
                let rebuilt =
                    ServeEngine::new(engine.db_snapshot(), &features, &ds.label, cfg.clone());
                let (got, want) = (engine.totals(), rebuilt.totals());
                for (k, (x, y)) in got.iter().zip(&want).enumerate() {
                    assert!(
                        (x - y).abs() <= 1e-6 * (1.0 + x.abs().max(y.abs())),
                        "{layout}/{threads}t round {round} total {k}: \
                         maintained {x} vs rebuilt {y}"
                    );
                }
                assert_eq!(
                    got[ci], want[ci],
                    "{layout}/{threads}t round {round}: joined-row count drifted"
                );
                assert_eq!(engine.fact_rows(), mirror.len());
            }
        }
    }
}

#[test]
fn favorita_deltas_match_rebuild_at_every_layout_and_thread_count() {
    let ds = favorita(1_500, 91);
    check_deltas_match_rebuild(&ds, 1_000);
}

#[test]
fn retailer_deltas_match_rebuild_at_every_layout_and_thread_count() {
    let ds = retailer(1_200, 92);
    check_deltas_match_rebuild(&ds, 2_000);
}

/// Batches that net to nothing — the empty batch, and a delete-then-
/// reinsert of a stored row — must leave totals, fact table, and
/// generation bitwise untouched, at every layout.
#[test]
fn netting_deltas_are_bitwise_noops() {
    let ds = favorita(800, 93);
    let features = covar_features(&ds);
    let train = ds.train();
    for &layout in Layout::all() {
        let engine = ServeEngine::new(
            train.clone(),
            &features,
            &ds.label,
            ServeConfig::new(layout),
        );
        let before = engine.snapshot();

        let report = engine.apply_delta(&DeltaBatch::new()).unwrap();
        assert!(report.noop, "{layout}: empty batch executed something");

        let stored: Vec<f64> = train.fact.columns.iter().map(|c| c.get_f64(7)).collect();
        let report = engine
            .apply_delta(&DeltaBatch::new().delete(stored.clone()).insert(stored))
            .unwrap();
        assert!(report.noop, "{layout}: delete-then-reinsert executed");
        assert_eq!(report.canceled_pairs, 1);

        let after = engine.snapshot();
        assert_eq!(before.generation, after.generation, "{layout}");
        assert_eq!(before.fact_rows, after.fact_rows, "{layout}");
        let same_bits = before
            .totals
            .iter()
            .zip(&after.totals)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same_bits, "{layout}: no-op moved total bits");
    }
}

/// After random edits, `refit` must produce exactly `fit_bgd` over the
/// maintained moments (the deterministic model-side path), and that
/// model must agree with a fit over the rebuilt totals within 1e-6 —
/// the data-side slack is all that separates them on real-shaped data.
#[test]
fn linreg_refit_matches_rebuild_fit() {
    let ds = favorita(1_500, 94);
    let features = covar_features(&ds);
    let train = ds.train();
    let ints = int_cols(&train);
    let cfg = ServeConfig::new(Layout::Trie);
    let engine = ServeEngine::new(train.clone(), &features, &ds.label, cfg.clone());
    let mut mirror = fact_rows(&train);
    let mut rng = StdRng::seed_from_u64(95);
    for _ in 0..2 {
        let batch = random_batch(&mut rng, &mut mirror, &ints, 20, 10);
        engine.apply_delta(&batch).unwrap();
    }
    let snap = engine.refit();
    let exact = fit_bgd(
        &moments_from_batch(&features, &ds.label, &engine.totals()),
        cfg.learning_rate,
        cfg.iterations,
    );
    assert_eq!(
        snap.linear, exact,
        "refit != fit_bgd over maintained moments"
    );

    let rebuilt = ServeEngine::new(engine.db_snapshot(), &features, &ds.label, cfg.clone());
    let reference = rebuilt.theta();
    assert!(
        (snap.linear.intercept - reference.intercept).abs()
            <= 1e-6 * (1.0 + reference.intercept.abs()),
        "intercept {} vs rebuilt {}",
        snap.linear.intercept,
        reference.intercept
    );
    for (a, b) in snap.linear.weights.iter().zip(&reference.weights) {
        assert!(
            (a - b).abs() <= 1e-6 * (1.0 + b.abs()),
            "weight {a} vs rebuilt {b}"
        );
    }
}

/// The logistic side: maintained logistic totals gate against rebuild at
/// 1e-6, and a warm refit is exactly `with_moments` + `fit_warm` from
/// the pre-refit θ over the maintained moments.
#[test]
fn logreg_warm_refit_stays_consistent() {
    let ds = favorita(1_000, 96).binarize_label();
    let features = covar_features(&ds);
    let train = ds.train();
    let ints = int_cols(&train);
    let cfg = ServeConfig::new(Layout::MergedHash).with_logistic(ds.label.clone());
    let engine = ServeEngine::new(train.clone(), &features, &ds.label, cfg.clone());
    assert!(engine.logistic().is_some(), "cold logistic fit missing");

    let mut mirror = fact_rows(&train);
    let mut rng = StdRng::seed_from_u64(97);
    let batch = random_batch(&mut rng, &mut mirror, &ints, 15, 5);
    engine.apply_delta(&batch).unwrap();

    // Data-side gate: maintained logistic totals vs rebuild.
    let rebuilt = ServeEngine::new(engine.db_snapshot(), &features, &ds.label, cfg.clone());
    let got = engine.logistic_totals().unwrap();
    let want = rebuilt.logistic_totals().unwrap();
    for (k, (x, y)) in got.iter().zip(&want).enumerate() {
        assert!(
            (x - y).abs() <= 1e-6 * (1.0 + x.abs().max(y.abs())),
            "logistic total {k}: maintained {x} vs rebuilt {y}"
        );
    }

    // Model-side gate: the warm refit path, recomputed outside the
    // engine from the same inputs, must agree bit for bit.
    let prev = engine.logistic().unwrap();
    let snap_db = engine.db_snapshot();
    let refit = engine.refit();
    let m = moments_from_batch(&features, &ds.label, &got);
    let mut trainer =
        FactorizedTrainer::with_moments(&snap_db, &features, cfg.layout, &cfg.exec, &m);
    let expect = trainer.fit_warm(
        &prev,
        cfg.logistic_learning_rate,
        cfg.logistic_warm_iterations,
    );
    assert_eq!(
        refit.logistic.as_ref(),
        Some(&expect),
        "warm refit diverged"
    );

    // And the warm model must still be a sensible classifier: finite
    // parameters, finite loss on the resident data.
    let model = refit.logistic.unwrap();
    assert!(model.intercept.is_finite());
    assert!(model.weights.iter().all(|w| w.is_finite()));
    let loss = model.mean_log_loss(&snap_db.materialize(), &ds.label);
    assert!(loss.is_finite(), "warm refit loss {loss}");
}

/// Prepared state built before a delta must be rejected afterwards with
/// a panic naming both generations. The delta here deletes one row and
/// inserts another, so the fact-table row count is unchanged — the
/// db-shape guard cannot fire, only the generation guard can.
#[test]
fn stale_prepared_after_delta_panics_naming_both_generations() {
    let ds = favorita(600, 98);
    let features = covar_features(&ds);
    let engine = ServeEngine::new(
        ds.train(),
        &features,
        &ds.label,
        ServeConfig::new(Layout::Array),
    );

    let old_db = engine.db_snapshot();
    let old_gen = old_db.generation();
    let cat = old_db.catalog();
    let dim_names: Vec<&str> = old_db.dims.iter().map(|d| d.rel.name.as_str()).collect();
    let tree = JoinTree::build_with_root(&cat, old_db.fact.name.as_str(), &dim_names).unwrap();
    let batch = covar_batch(&features, &ds.label);
    let plan = ViewPlan::plan(&batch, &tree, &cat).unwrap();
    let prep = prepare(Layout::Array, &plan, &old_db);

    // One delete + one insert: row count unchanged, generation bumped.
    let stored: Vec<f64> = old_db.fact.columns.iter().map(|c| c.get_f64(0)).collect();
    let mut replacement = stored.clone();
    *replacement.last_mut().unwrap() += 1.0;
    let report = engine
        .apply_delta(&DeltaBatch::new().delete(stored).insert(replacement))
        .unwrap();
    assert_eq!(report.generation, old_gen + 1);

    let new_db = engine.db_snapshot();
    assert_eq!(new_db.fact.len(), old_db.fact.len(), "row count changed");
    let err = std::panic::catch_unwind(|| {
        execute_with(Layout::Array, &plan, &new_db, &prep, &ExecConfig::serial())
    })
    .expect_err("stale Prepared was accepted");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("stale"), "panic message: {msg}");
    assert!(
        msg.contains(&format!("generation {old_gen}")),
        "message misses the build generation: {msg}"
    );
    assert!(
        msg.contains(&format!("generation {}", old_gen + 1)),
        "message misses the current generation: {msg}"
    );
}
