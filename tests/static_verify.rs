//! Static-verification tests: every optimizer phase individually preserves
//! closed scope, typing, and interpreter semantics on random expressions;
//! the verifier *rejects* deliberately broken rewrites (mutation tests);
//! and the θ-dependence analysis statically agrees with the engine's
//! prepare/execute split — hoisted bindings are θ-free, the `__sigma`
//! iteration column lives on the fact table, and `prepare` refuses plans
//! that would bake an iteration column into a dimension view.

use ifaq::{CompileOptions, Pipeline};
use ifaq_engine::interp::{eval_expr, Env};
use ifaq_engine::star::{Dim, StarDb};
use ifaq_engine::Layout;
use ifaq_ir::analysis::is_iteration_column;
use ifaq_ir::parser::parse_expr;
use ifaq_ir::schema::running_example_catalog;
use ifaq_ir::types::TypeEnv;
use ifaq_ir::{BindingTime, Expr, Sym, ThetaAnalysis, Type, Verifier};
use ifaq_query::batch::logistic_gradient_batch;
use ifaq_query::{JoinTree, ViewPlan};
use ifaq_storage::{ColRelation, Column, Value};
use ifaq_transform::highlevel::{linear_regression_program, logistic_regression_program};
use ifaq_transform::{factorize, generic, licm, memo, normalize, parteval, specialize};
use proptest::prelude::*;
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// Per-phase preservation properties
// ---------------------------------------------------------------------------

/// Random arithmetic/sum expressions over variables `a`, `b` (ints) and a
/// collection `C` (set of ints) — the same shape `rewrite_semantics.rs`
/// uses, so the per-phase checks below complement its end-to-end ones.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(Expr::int),
        Just(Expr::var("a")),
        Just(Expr::var("b")),
    ];
    leaf.prop_recursive(4, 64, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::add(x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::mul(x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::sub(x, y)),
            inner.clone().prop_map(Expr::neg),
            inner
                .clone()
                .prop_map(|b| Expr::sum("x", Expr::var("C"), b)),
            inner.clone().prop_map(|b| Expr::sum(
                "x",
                Expr::var("C"),
                Expr::mul(Expr::var("x"), b)
            )),
            (inner.clone(), inner).prop_map(|(v, b)| Expr::let_("t", v, b)),
        ]
    })
}

fn env(a: i64, b: i64, coll: &[i64]) -> Env {
    let mut e = Env::new();
    e.insert("a".into(), Value::Int(a));
    e.insert("b".into(), Value::Int(b));
    e.insert(
        "C".into(),
        Value::Set(coll.iter().map(|&v| Value::Int(v)).collect()),
    );
    e
}

fn globals() -> BTreeSet<Sym> {
    ["a", "b", "C"].into_iter().map(Sym::new).collect()
}

fn type_env() -> TypeEnv {
    [
        (Sym::new("a"), Type::Int),
        (Sym::new("b"), Type::Int),
        (Sym::new("C"), Type::Set(Box::new(Type::Int))),
    ]
    .into()
}

/// The three per-phase invariants the gates enforce, checked through the
/// same `Verifier` the pipeline uses: the output is closed over the input's
/// scope, type-preserving where the input is typeable, and
/// semantics-preserving under the interpreter.
fn check_phase(phase: &str, before: &Expr, after: &Expr, env: &Env) -> Result<(), TestCaseError> {
    let v = Verifier::new(phase, globals());
    if let Err(e) = v.check_rewrite(before, after) {
        return Err(TestCaseError::fail(format!("{phase} broke scope: {e}")));
    }
    if let Err(e) = v.check_type_preservation(&type_env(), before, after) {
        return Err(TestCaseError::fail(format!("{phase} broke typing: {e}")));
    }
    prop_assert_eq!(
        eval_expr(env, before),
        eval_expr(env, after),
        "{} changed semantics",
        phase
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Walks the §4.1 chain in pipeline order, verifying each phase's
    /// individual step — not just the end-to-end composition.
    #[test]
    fn each_highlevel_phase_preserves_scope_typing_and_semantics(
        e in arb_expr(), a in -5i64..5, b in -5i64..5,
        coll in proptest::collection::btree_set(-4i64..4, 0..5)
    ) {
        let coll: Vec<i64> = coll.into_iter().collect();
        let env = env(a, b, &coll);
        let cat = running_example_catalog(100, 10, 5);
        let theta = ThetaAnalysis::default();

        let (e1, _) = normalize::normalize(&e);
        check_phase("normalize", &e, &e1, &env)?;
        let (e2, _) = ifaq_transform::schedule::schedule(&e1, &cat);
        check_phase("schedule", &e1, &e2, &env)?;
        let (e3, _) = factorize::factorize(&e2);
        check_phase("factorize", &e2, &e3, &env)?;
        let (e4, _) = memo::memoize(&e3, &theta);
        check_phase("memoize", &e3, &e4, &env)?;
        let (e5, _) = licm::licm_expr(&e4);
        check_phase("licm", &e4, &e5, &env)?;
        let (e6, _) = generic::cleanup(&e5);
        check_phase("cleanup", &e5, &e6, &env)?;
    }

    /// The §4.2 phases, each on its pipeline-realistic input.
    #[test]
    fn each_specialization_phase_preserves_scope_typing_and_semantics(
        e in arb_expr(), a in -5i64..5, b in -5i64..5,
        coll in proptest::collection::btree_set(-4i64..4, 0..5)
    ) {
        let coll: Vec<i64> = coll.into_iter().collect();
        let env = env(a, b, &coll);
        let (e1, _) = parteval::partial_eval(&e);
        check_phase("parteval", &e, &e1, &env)?;
        let (e2, _) = specialize::specialize_expr(&e1);
        check_phase("specialize", &e1, &e2, &env)?;
    }

    /// Memoization with a non-empty volatile set never hoists a binding
    /// that mentions a volatile variable — the analysis and the rewrite
    /// agree on what is θ-free.
    #[test]
    fn memoization_respects_the_volatile_set(
        e in arb_expr(),
    ) {
        let theta = ThetaAnalysis::new([Sym::new("a")].into());
        let (e2, _) = memo::memoize(&e, &theta);
        // Every introduced memo binding must be θ-free.
        let mut stack = vec![&e2];
        while let Some(cur) = stack.pop() {
            if let Expr::Let { var, val, .. } = cur {
                if var.as_str().starts_with("__memo") {
                    prop_assert!(
                        theta.is_theta_free(val),
                        "memoized a volatile expression: {}", val
                    );
                }
            }
            stack.extend(cur.children());
        }
    }
}

// ---------------------------------------------------------------------------
// Mutation tests: the verifier must *reject* broken rewrites
// ---------------------------------------------------------------------------

/// The classic ill-scoped hoist — a `let` moved past the `Σ` binder its
/// value depends on. The verifier must reject it with a phase-tagged,
/// pretty-printed error.
#[test]
fn verifier_rejects_a_hoist_past_its_binder() {
    let v = Verifier::new("licm", ["Q", "f"].into_iter().map(Sym::new).collect());
    let before = parse_expr("sum(x in Q) (let y = f(x) in y * x)").unwrap();
    let broken = parse_expr("let y = f(x) in sum(x in Q) y * x").unwrap();
    let err = v
        .check_rewrite(&before, &broken)
        .expect_err("the broken hoist must be rejected");
    assert_eq!(err.phase, "licm");
    assert!(err.message.contains("unbound variable `x`"), "{err}");
    assert_eq!(err.expr, "x");
    let shown = err.to_string();
    assert!(shown.contains("after phase `licm`"), "{shown}");
    assert!(shown.contains("unbound variable `x`"), "{shown}");
}

/// A "memoization" that replaces an expression with a reference to a memo
/// binding it never introduced.
#[test]
fn verifier_rejects_a_dangling_memo_reference() {
    let v = Verifier::new("memoize", ["Q", "f"].into_iter().map(Sym::new).collect());
    let before = parse_expr("sum(x in dom(Q)) f(x)").unwrap();
    let broken = parse_expr("__memo0 * 1").unwrap();
    let err = v.check_rewrite(&before, &broken).unwrap_err();
    assert!(err.message.contains("unbound variable `__memo0`"), "{err}");
}

/// A rewrite that changes an expression's type is rejected even when it
/// stays well-scoped.
#[test]
fn verifier_rejects_a_type_changing_rewrite() {
    let v = Verifier::new("parteval", BTreeSet::new());
    let env: TypeEnv = [(Sym::new("a"), Type::Int)].into();
    let before = parse_expr("a * 2").unwrap();
    let broken = parse_expr("a * 2.0").unwrap();
    let err = v
        .check_type_preservation(&env, &before, &broken)
        .unwrap_err();
    assert!(err.message.contains("changed the type"), "{err}");
}

/// The codegen input gate: emitting C++ for a batch that does not pair
/// with the plan must fail loudly, not emit garbage.
#[test]
fn codegen_gate_rejects_mismatched_plan_and_batch() {
    let db = star_db(false);
    let cat = db.catalog();
    let tree = JoinTree::build_with_root(&cat, "F", &["D1", "D2"]).unwrap();
    let batch = ifaq_query::batch::covar_batch(&["p1", "p2"], "m");
    let plan = ViewPlan::plan(&batch, &tree, &cat).unwrap();
    assert!(ifaq_codegen::verify_plan_inputs(&plan, &batch).is_ok());
    let mut short = batch.clone();
    short.aggs.pop();
    let err = ifaq_codegen::verify_plan_inputs(&plan, &short).unwrap_err();
    assert!(err.contains("aggregate"), "{err}");
}

// ---------------------------------------------------------------------------
// θ-analysis agrees with the prepare/execute split
// ---------------------------------------------------------------------------

/// A small fixed star database: fact `F(d1, d2, m)` with two dimensions
/// `D1(d1, p1)` and `D2(d2, p2)`. With `sigma`, the fact additionally
/// carries the per-iteration `__sigma` score column.
fn star_db(sigma: bool) -> StarDb {
    let mut attrs: Vec<Sym> = ["d1", "d2", "m"].into_iter().map(Sym::new).collect();
    let mut cols = vec![
        Column::I64(vec![0, 1, 2, 0, 1]),
        Column::I64(vec![0, 0, 1, 1, 0]),
        Column::F64(vec![1.0, -2.0, 0.5, 3.0, -1.0]),
    ];
    if sigma {
        attrs.push(Sym::new(ifaq_ml::logreg::SIGMA_COL));
        cols.push(Column::F64(vec![0.5, 0.5, 0.5, 0.5, 0.5]));
    }
    let fact = ColRelation::new("F", attrs, cols);
    let dim1 = ColRelation::new(
        "D1",
        vec!["d1".into(), "p1".into()],
        vec![Column::I64(vec![0, 1, 2]), Column::F64(vec![0.1, 0.2, 0.3])],
    );
    let dim2 = ColRelation::new(
        "D2",
        vec!["d2".into(), "p2".into()],
        vec![Column::I64(vec![0, 1]), Column::F64(vec![-0.5, 0.7])],
    );
    StarDb::new(fact, vec![Dim::new(dim1, "d1"), Dim::new(dim2, "d2")])
}

/// Every binding the optimizer hoists in front of the training loop must
/// be θ-free according to `ThetaAnalysis::for_program` — the static
/// justification for the engine preparing them once and reusing across
/// iterations (PR 4's prepare/execute split).
#[test]
fn hoisted_bindings_are_theta_free_by_analysis() {
    let db = star_db(false);
    let program = linear_regression_program(&["p1", "p2"], "m", Expr::var("Q"), 0.001, 3);
    let catalog = db.catalog().with_var_size("Q", db.fact_rows() as u64);
    let options = CompileOptions::for_star_db(&db);
    let compiled = Pipeline::new(catalog)
        .compile(&program, &options)
        .expect("compile");

    let high = &compiled.stages.high_level;
    let theta = ThetaAnalysis::for_program(high);
    assert!(
        !high.lets.is_empty(),
        "expected the optimizer to hoist at least one binding"
    );
    for (name, val) in &high.lets {
        assert!(
            theta.is_theta_free(val),
            "hoisted binding `{name}` is θ-dependent: {val}"
        );
        assert_ne!(
            theta.classify(val),
            BindingTime::ThetaDependent,
            "classification disagrees for `{name}`"
        );
    }
    // The loop step, by contrast, is where θ-dependence lives.
    assert_eq!(
        theta.classify(&high.step),
        BindingTime::ThetaDependent,
        "the gradient step must depend on the loop state"
    );
}

/// Logistic regression cannot hoist its data scan (the sigmoid couples θ
/// to every tuple); the engine's answer is the per-iteration `__sigma`
/// fact column. The analysis agrees on both halves: the program's step is
/// θ-dependent, and `__sigma` is an iteration column that the plan keeps
/// on the fact side — never inside a dimension view that `prepare` would
/// bake once.
#[test]
fn sigma_column_is_fact_owned_in_the_logistic_plan() {
    let program = logistic_regression_program(&["p1", "p2"], "m", Expr::var("Q"), 0.1, 3);
    let theta = ThetaAnalysis::for_program(&program);
    assert_eq!(theta.classify(&program.step), BindingTime::ThetaDependent);

    assert!(is_iteration_column(ifaq_ml::logreg::SIGMA_COL));

    let db = star_db(true);
    let cat = db.catalog();
    let tree = JoinTree::build_with_root(&cat, "F", &["D1", "D2"]).unwrap();
    let batch = logistic_gradient_batch(&["p1", "p2"], ifaq_ml::logreg::SIGMA_COL);
    let plan = ViewPlan::plan(&batch, &tree, &cat).unwrap();

    // The fact side owns the iteration column…
    assert!(
        plan.terms.iter().any(|t| t
            .fact_factors
            .iter()
            .any(|f| is_iteration_column(f.as_str()))),
        "no fact term owns `{}`",
        ifaq_ml::logreg::SIGMA_COL
    );
    // …and no dimension payload does, so prepared state stays valid
    // across iterations for every layout.
    for dim in &plan.dims {
        for payload in &dim.payloads {
            for attr in payload
                .factors
                .iter()
                .chain(payload.filter.iter().map(|p| &p.attr))
            {
                assert!(
                    !is_iteration_column(attr.as_str()),
                    "dimension `{}` owns iteration column `{attr}`",
                    dim.relation
                );
            }
        }
    }
    for &layout in Layout::all() {
        let _ = ifaq_engine::layout::prepare(layout, &plan, &db);
    }
}

/// The runtime half of the same contract: a plan that *does* put an
/// iteration column into a dimension payload is refused by `prepare`
/// before any state is built.
#[test]
fn prepare_rejects_dimension_owned_iteration_columns() {
    let fact = ColRelation::new(
        "F",
        vec!["d1".into(), "m".into()],
        vec![Column::I64(vec![0, 1, 0]), Column::F64(vec![1.0, 2.0, 3.0])],
    );
    let dim1 = ColRelation::new(
        "D1",
        vec!["d1".into(), "__bad".into()],
        vec![Column::I64(vec![0, 1]), Column::F64(vec![0.5, 0.5])],
    );
    let db = StarDb::new(fact, vec![Dim::new(dim1, "d1")]);
    let cat = db.catalog();
    let tree = JoinTree::build_with_root(&cat, "F", &["D1"]).unwrap();
    let batch = ifaq_query::batch::covar_batch(&["__bad"], "m");
    let plan = ViewPlan::plan(&batch, &tree, &cat).unwrap();
    assert!(
        plan.dims.iter().any(|d| d
            .payloads
            .iter()
            .any(|p| p.factors.iter().any(|f| f.as_str() == "__bad"))),
        "test setup: the plan must put `__bad` into a dimension payload"
    );
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        ifaq_engine::layout::prepare(Layout::MergedHash, &plan, &db)
    }))
    .expect_err("prepare must refuse a dimension-owned iteration column");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("iteration column"), "{msg}");
    assert!(msg.contains("__bad"), "{msg}");
}
