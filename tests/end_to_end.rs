//! Cross-crate integration tests: the full Figure 3 pipeline on realistic
//! synthetic data, engine equivalence at scale, and model equality between
//! the factorized and materialized training paths.

use ifaq::{CompileOptions, Pipeline};
use ifaq_datagen::{favorita, retailer};
use ifaq_engine::Layout;
use ifaq_ir::Expr;
use ifaq_ml::linreg;
use ifaq_ml::logreg;
use ifaq_ml::metrics::{linreg_rmse, logreg_accuracy, logreg_auc};
use ifaq_ml::tree::{fit_factorized, fit_materialized, thresholds_from_db, Node, TreeConfig};
use ifaq_storage::Value;
use ifaq_transform::highlevel::{linear_regression_program, logistic_regression_program};

#[test]
fn full_pipeline_trains_on_favorita() {
    let ds = favorita(5_000, 21);
    let db = &ds.db;
    let features = ds.feature_refs();
    let program = linear_regression_program(&features, &ds.label, Expr::var("Q"), 0.0001, 10);
    let catalog = db.catalog().with_var_size("Q", db.fact_rows() as u64);
    let options = CompileOptions::for_star_db(db);
    let compiled = Pipeline::new(catalog)
        .compile(&program, &options)
        .expect("compile");

    // The covar matrix was hoisted; the loop is data-free.
    assert!(compiled.stages.high_level_report.memoized >= 1);
    let step = compiled.program.step.to_string();
    assert!(!step.contains("dom(Q)"), "loop still scans data: {step}");

    // Batch: 5 features + label ⇒ 15 pairwise + 5 label-free first moments
    // are not all needed by this gradient; at least the pairwise terms are.
    assert!(
        compiled.batch.len() >= 15,
        "batch has {} aggregates",
        compiled.batch.len()
    );

    let theta = compiled.execute(db, Layout::MergedHash).expect("execute");
    match theta {
        Value::Record(fs) => assert_eq!(fs.len(), features.len()),
        other => panic!("expected parameter record, got {other}"),
    }
}

#[test]
fn all_physical_layouts_agree_on_both_datasets() {
    for ds in [favorita(8_000, 3), retailer(8_000, 4)] {
        let features = ds.feature_refs();
        let reference =
            linreg::moments_factorized(&ds.db, &features, &ds.label, Layout::Materialized);
        for &layout in Layout::all() {
            let m = linreg::moments_factorized(&ds.db, &features, &ds.label, layout);
            for (a, b) in m.gram.iter().zip(&reference.gram) {
                let tol = 1e-9 * (1.0 + a.abs().max(b.abs()));
                assert!((a - b).abs() <= tol, "{layout} on {}: {a} vs {b}", ds.name);
            }
        }
    }
}

#[test]
fn factorized_linreg_matches_materialized_path() {
    let ds = favorita(6_000, 5);
    let features = ds.feature_refs();
    let fact = linreg::moments_factorized(&ds.db, &features, &ds.label, Layout::MergedHash);
    let matrix = ds.db.materialize();
    let mat = linreg::moments_from_matrix(&matrix, &features, &ds.label);
    // Identical moments ⇒ identical models for any optimizer.
    for (a, b) in fact.gram.iter().zip(&mat.gram) {
        assert!((a - b).abs() <= 1e-7 * (1.0 + a.abs()), "{a} vs {b}");
    }
    let m1 = linreg::fit_bgd(&fact, 0.5, 200);
    let m2 = linreg::fit_bgd(&mat, 0.5, 200);
    for (a, b) in m1.weights.iter().zip(&m2.weights) {
        assert!((a - b).abs() < 1e-6);
    }
}

#[test]
fn factorized_tree_equals_materialized_tree_on_retailer() {
    let ds = retailer(4_000, 6);
    let features: Vec<&str> = ds.feature_refs().into_iter().take(6).collect();
    let config = TreeConfig {
        max_depth: 3,
        min_samples: 5.0,
        thresholds_per_feature: 3,
    };
    let t1 = fit_factorized(&ds.db, &features, &ds.label, &config);
    let matrix = ds.db.materialize();
    let thresholds = thresholds_from_db(&ds.db, &features, config.thresholds_per_feature);
    let t2 = fit_materialized(&matrix, &features, &ds.label, &thresholds, &config);
    // The two paths accumulate the variance batches in different orders
    // (factorized views vs a one-shot matrix scan), so leaf means match
    // only up to fp association; the structure must match exactly.
    assert_trees_match(&t1.root, &t2.root);
    assert_eq!(t1.features, t2.features);
    assert!(t1.depth() <= 3);
}

/// Same splits and thresholds everywhere; leaf predictions/counts equal
/// within fp-reassociation tolerance.
fn assert_trees_match(a: &Node, b: &Node) {
    match (a, b) {
        (
            Node::Leaf {
                prediction: p1,
                count: c1,
            },
            Node::Leaf {
                prediction: p2,
                count: c2,
            },
        ) => {
            assert!((p1 - p2).abs() <= 1e-9 * (1.0 + p1.abs()), "{p1} vs {p2}");
            assert!((c1 - c2).abs() <= 1e-9 * (1.0 + c1.abs()), "{c1} vs {c2}");
        }
        (
            Node::Split {
                attr: a1,
                threshold: t1,
                left: l1,
                right: r1,
            },
            Node::Split {
                attr: a2,
                threshold: t2,
                left: l2,
                right: r2,
            },
        ) => {
            assert_eq!(a1, a2);
            assert_eq!(t1, t2);
            assert_trees_match(l1, l2);
            assert_trees_match(r1, r2);
        }
        (x, y) => panic!("tree shapes diverge: {x:?} vs {y:?}"),
    }
}

#[test]
fn trained_model_beats_predicting_the_mean() {
    let ds = favorita(20_000, 8);
    let train = ds.train();
    let test = ds.test_matrix();
    let features = ds.feature_refs();
    let model = linreg::fit_factorized(&train, &features, &ds.label, Layout::MergedHash, 0.5, 300);
    let rmse = linreg_rmse(&model, &test, &ds.label);
    // Baseline: predict the training mean.
    let moments = linreg::moments_factorized(&train, &features, &ds.label, Layout::MergedHash);
    let mean = moments.xty[0] / moments.count;
    let mean_model = linreg::LinearModel {
        features: model.features.clone(),
        intercept: mean,
        weights: vec![0.0; features.len()],
    };
    let rmse_mean = linreg_rmse(&mean_model, &test, &ds.label);
    assert!(
        rmse < rmse_mean * 0.8,
        "model rmse {rmse} should clearly beat mean rmse {rmse_mean}"
    );
}

/// Boxes a materialized matrix as the `Q` dictionary the D-IFAQ
/// interpreter consumes (record tuple → multiplicity).
fn boxed_query(matrix: &ifaq_engine::TrainMatrix) -> Value {
    let mut d = ifaq_storage::Dict::new();
    for i in 0..matrix.rows {
        let row = matrix.row(i);
        let rec = Value::record(
            matrix
                .attrs
                .iter()
                .cloned()
                .zip(row.iter().map(|v| Value::real(*v)))
                .collect::<Vec<_>>(),
        );
        d.insert_add(rec, Value::Int(1)).unwrap();
    }
    Value::Dict(d)
}

/// The D-IFAQ interpreter running the *optimized* logistic program must
/// agree with `ifaq_ml`'s mirror of the same update rule: the high-level
/// optimizations (normalize apart, memoize + hoist the label
/// interaction, keep the sigmoid aggregate in the loop) are semantics
/// preserving on the new model family.
#[test]
fn interpreter_agrees_with_ml_on_the_optimized_logistic_program() {
    let ds = favorita(300, 12).binarize_label();
    let matrix = ds.db.materialize();
    let features = ds.feature_refs();
    let (alpha, iters) = (0.0005, 5);
    let program =
        logistic_regression_program(&features, &ds.label, Expr::var("Q"), alpha, iters as i64);
    let catalog = ds.db.catalog().with_var_size("Q", ds.db.fact_rows() as u64);
    let (optimized, report) = ifaq_transform::highlevel::optimize_program(&program, &catalog);
    // The sigmoid aggregate stays in the loop; the label interaction hoists.
    assert!(optimized.step.to_string().contains("sigmoid"));
    assert_eq!(report.memoized, 1);

    let mut env = ifaq_engine::interp::Env::new();
    env.insert("Q".into(), boxed_query(&matrix));
    let theta = ifaq_engine::Interpreter::with_max_iterations(1_000)
        .run(&env, &optimized)
        .expect("interpret optimized logistic program");
    let mirror = logreg::fit_program_mirror(&matrix, &features, &ds.label, alpha, iters);
    for (f, want) in features.iter().zip(&mirror) {
        let got = match &theta {
            Value::Dict(d) => d
                .get(&Value::Field(ifaq_ir::Sym::new(*f)))
                .unwrap_or_else(|| panic!("θ has no entry for {f}"))
                .as_f64()
                .expect("numeric parameter"),
            other => panic!("expected parameter dictionary, got {other}"),
        };
        assert!(
            (got - want).abs() <= 1e-9 * (1.0 + want.abs()),
            "θ[{f}]: interpreter {got} vs ml {want}"
        );
    }
}

/// Factorized logistic training produces a model that actually ranks the
/// held-out rows (AUC and accuracy clearly above chance) — the logistic
/// analogue of `trained_model_beats_predicting_the_mean`.
#[test]
fn trained_logistic_model_beats_chance() {
    let ds = favorita(20_000, 8).binarize_label();
    let train = ds.train();
    let test = ds.test_matrix();
    let features = ds.feature_refs();
    let model = logreg::fit_factorized(&train, &features, &ds.label, Layout::MergedHash, 0.5, 300);
    let auc = logreg_auc(&model, &test, &ds.label);
    let acc = logreg_accuracy(&model, &test, &ds.label);
    assert!(auc > 0.65, "held-out AUC {auc} should clearly beat 0.5");
    assert!(acc > 0.55, "held-out accuracy {acc} should beat chance");
    let loss = model.mean_log_loss(&test, &ds.label);
    assert!(
        loss.is_finite() && loss < 2f64.ln(),
        "held-out log-loss {loss} should beat the coin-flip loss"
    );
}

#[test]
fn interpreter_validates_the_extracted_batch() {
    // The batch computed by the physical engine must equal the aggregates
    // the D-IFAQ interpreter computes over the boxed join dictionary.
    let ds = favorita(800, 12);
    let matrix = ds.db.materialize();
    // Boxed Q.
    let mut d = ifaq_storage::Dict::new();
    for i in 0..matrix.rows {
        let row = matrix.row(i);
        let rec = Value::record(
            matrix
                .attrs
                .iter()
                .cloned()
                .zip(row.iter().map(|v| Value::real(*v)))
                .collect::<Vec<_>>(),
        );
        d.insert_add(rec, Value::Int(1)).unwrap();
    }
    let mut env = ifaq_engine::interp::Env::new();
    env.insert("Q".into(), Value::Dict(d));
    let interp_val = ifaq_engine::interp::eval_expr(
        &env,
        &ifaq_ir::parser::parse_expr("sum(x in dom(Q)) Q(x) * x.oilprice * x.unit_sales").unwrap(),
    )
    .unwrap();
    let m = linreg::moments_factorized(&ds.db, &["oilprice"], &ds.label, Layout::MergedHash);
    // xty[1] = Σ oilprice · unit_sales.
    let engine_val = m.xty[1];
    let interp_f = interp_val.as_f64().unwrap();
    assert!(
        (interp_f - engine_val).abs() <= 1e-6 * (1.0 + engine_val.abs()),
        "{interp_f} vs {engine_val}"
    );
}
