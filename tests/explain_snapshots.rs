//! Snapshot tests for the executor-tree `explain` rendering.
//!
//! Pins the exact `Prepared::explain_tree()` output for every layout on
//! both generated datasets. These strings are the documentation-of-record
//! for what each layout's tree looks like (ARCHITECTURE.md reproduces
//! one); a diff here means the tree *shape* or a node's self-description
//! changed and the docs must move with it. The rendering draws only on
//! plan-ordered state (never hash-map iteration order), so exact string
//! equality is a stable bar.
//!
//! Also checks the prepare-invocation accounting the prepared-state
//! contract promises: one node-prepare per tree node at prepare time,
//! and **zero** additional node-prepares across any number of executes —
//! plus cache-hit accounting for `prepare_cached` with bit-identical
//! results.

use ifaq_datagen::{favorita, retailer, Dataset};
use ifaq_engine::layout::{execute_with, prepare, prepare_cached, prepare_invocations};
use ifaq_engine::{exec, ExecConfig, Layout};
use ifaq_query::batch::covar_batch;
use ifaq_query::{JoinTree, ViewPlan};

fn plan_for(ds: &Dataset, n_features: usize) -> ViewPlan {
    let mut features = ds.feature_refs();
    features.truncate(n_features);
    let batch = covar_batch(&features, &ds.label);
    let cat = ds.db.catalog();
    let tree = JoinTree::build(&cat, &ds.relation_names()).expect("join tree");
    ViewPlan::plan(&batch, &tree, &cat).expect("view plan")
}

fn snapshot(ds: &Dataset, layout: Layout) -> String {
    let plan = plan_for(ds, 2);
    prepare(layout, &plan, &ds.db).explain_tree()
}

/// The favorita scan line is shared by every layout's tree: same fact
/// relation, same plan-touched columns, same generation.
const FAVORITA_SCAN: &str =
    "   └─ Scan[Sales: 1000 rows resident, cols [item, date, store, onpromotion, unit_sales], generation 0]\n";
const RETAILER_SCAN: &str =
    "   └─ Scan[Inventory: 1000 rows resident, cols [ksn, dateid, locn, inventoryunits], generation 0]\n";

const FAVORITA_DIMS: &str = "Items via item (3 payloads), Oil via date (1 payload), Holiday via date (1 payload), Stores via store (1 payload)";
const RETAILER_DIMS: &str = "Item via ksn (1 payload), Weather via dateid (1 payload), Location via locn (6 payloads), Census via locn (1 payload)";

/// Expected `(layout, join/view node line)` pairs; the full tree is
/// `Aggregate[10 terms]` + that line + the dataset's scan line.
fn expected_view_lines(dims: &str, trie: &str) -> Vec<(Layout, String)> {
    vec![
        (
            Layout::Materialized,
            format!("└─ MaterializedJoin[resolved join index; {dims}]\n"),
        ),
        (
            Layout::Pushdown,
            format!("└─ PushdownViews[10 term view sets; {dims}]\n"),
        ),
        (
            Layout::BoxedRecords,
            format!("└─ BoxedRecordViews[{dims}]\n"),
        ),
        (
            Layout::BoxedScalars,
            format!("└─ BoxedScalarViews[{dims}]\n"),
        ),
        (Layout::MergedHash, format!("└─ MergedHashViews[{dims}]\n")),
        (Layout::Trie, format!("└─ FactTrie[{trie}; {dims}]\n")),
        (Layout::Array, format!("└─ DenseArrayViews[{dims}]\n")),
        (
            Layout::SortedTrie,
            format!("└─ SortedTrie[{trie}; {dims}]\n"),
        ),
    ]
}

fn check_dataset(ds: &Dataset, scan: &str, dims: &str, trie: &str) {
    let expected = expected_view_lines(dims, trie);
    assert_eq!(expected.len(), Layout::all().len(), "cover every layout");
    for (layout, view_line) in expected {
        let want = format!("Aggregate[10 terms]\n{view_line}{scan}");
        assert_eq!(
            snapshot(ds, layout),
            want,
            "{} / {layout:?} explain tree drifted from the pinned snapshot",
            ds.name
        );
    }
}

#[test]
fn favorita_snapshots_all_layouts() {
    check_dataset(
        &favorita(1_000, 7),
        FAVORITA_SCAN,
        FAVORITA_DIMS,
        "prefix [store, date], 1 per-row dim, 10 row programs",
    );
}

#[test]
fn retailer_snapshots_all_layouts() {
    check_dataset(
        &retailer(1_000, 7),
        RETAILER_SCAN,
        RETAILER_DIMS,
        "prefix [locn, dateid], 1 per-row dim, 3 row programs",
    );
}

/// The unprepared rendering (`exec::explain_tree`) differs from the
/// prepared one in exactly two ways: the aggregate node carries the
/// batch's result names (the batch is in hand before planning strips
/// it), and the scan leaf shows `unprepared` instead of the pinned
/// source identity.
#[test]
fn unprepared_rendering_names_aggregates_and_marks_the_scan() {
    let ds = favorita(1_000, 7);
    let mut features = ds.feature_refs();
    features.truncate(2);
    let batch = covar_batch(&features, &ds.label);
    let cat = ds.db.catalog();
    let tree = JoinTree::build(&cat, &ds.relation_names()).expect("join tree");
    let plan = ViewPlan::plan(&batch, &tree, &cat).expect("view plan");
    assert_eq!(
        exec::explain_tree(&plan, Some(&batch), Layout::MergedHash),
        "Aggregate[10 terms: m_onpromotion_onpromotion, m_onpromotion_perishable, \
         m_onpromotion_unit_sales, m_perishable_perishable, m_perishable_unit_sales, \
         m_unit_sales_unit_sales, m_onpromotion, m_perishable, m_unit_sales, count]\n\
         └─ MergedHashViews[Items via item (3 payloads), Oil via date (1 payload), \
         Holiday via date (1 payload), Stores via store (1 payload)]\n   \
         └─ Scan[Sales: unprepared, cols [item, date, store, onpromotion, unit_sales]]\n"
    );
}

/// `layout::prepare` runs node-prepares exactly once; executing the
/// prepared tree any number of times — at several thread counts — runs
/// zero more, and the results never drift.
#[test]
fn prepare_invocations_are_counted_once_per_prepare() {
    let ds = favorita(1_000, 7);
    let plan = plan_for(&ds, 2);

    let before = prepare_invocations();
    let prep = prepare(Layout::SortedTrie, &plan, &ds.db);
    let after_prepare = prepare_invocations();
    assert_eq!(
        after_prepare - before,
        1,
        "one prepare call per layout::prepare"
    );

    let baseline = execute_with(
        Layout::SortedTrie,
        &plan,
        &ds.db,
        &prep,
        ExecConfig::global(),
    );
    for threads in [1, 4, 8] {
        let cfg = ExecConfig::with_threads(threads);
        for _ in 0..3 {
            let got = execute_with(Layout::SortedTrie, &plan, &ds.db, &prep, &cfg);
            assert_eq!(got.len(), plan.terms.len());
            if threads == 1 {
                assert_eq!(got, baseline, "serial chunked run must not drift");
            }
        }
    }
    assert_eq!(
        prepare_invocations(),
        after_prepare,
        "execute_with must never re-prepare"
    );
}

/// Warm preparation through a `PrepCache` must (a) actually hit the
/// cache on the second build and (b) return bit-identical results to the
/// cold preparation — cached θ-free state is shared, not approximated.
#[test]
fn prepare_cached_hits_and_stays_bit_identical() {
    let ds = retailer(1_000, 7);
    let plan = plan_for(&ds, 2);
    let cache = exec::PrepCache::new();

    for &layout in Layout::all() {
        let cold = prepare_cached(layout, &plan, &ds.db, &cache);
        let (hits_cold, _) = (cache.hits(), cache.misses());
        let warm = prepare_cached(layout, &plan, &ds.db, &cache);
        // Resident Materialized is the one layout with nothing cacheable:
        // its prepared state is the resolved join index, which depends on
        // the fact rows the cache deliberately excludes.
        if layout != Layout::Materialized {
            assert!(
                cache.hits() > hits_cold,
                "{layout:?}: second preparation should hit the cache"
            );
        }
        let cfg = ExecConfig::with_threads(4);
        assert_eq!(
            execute_with(layout, &plan, &ds.db, &cold, &cfg),
            execute_with(layout, &plan, &ds.db, &warm, &cfg),
            "{layout:?}: cached preparation must be bit-identical to cold"
        );
    }
}
