//! Differential tests for prepared-state execution: reusing one cached
//! `layout::Prepared` across many execute calls must be **bit-identical**
//! to fresh prepare+execute every time, for every layout, thread count,
//! and dataset shape — and iterative training over cached preparation
//! must still match the materialized reference.
//!
//! Why exactness is the right bar: the one-shot entry points are thin
//! wrappers over the prepare/execute split, so reuse and fresh runs
//! execute the *same* reduction over the *same* state — any divergence
//! means the executor mutated its supposedly θ-free preparation (or
//! rebuilt it differently), which is precisely the bug class this suite
//! exists to catch.

use ifaq::{CompileOptions, Pipeline};
use ifaq_datagen::{favorita, retailer, Dataset};
use ifaq_engine::layout::{execute_with, prepare};
use ifaq_engine::{ExecConfig, Layout};
use ifaq_ml::logreg::{self, FactorizedTrainer};
use ifaq_ml::{linreg, logreg::LogisticModel};
use ifaq_query::batch::{covar_batch, AggBatch};
use ifaq_query::{JoinTree, ViewPlan};

/// Parallelism levels required by the acceptance criteria.
const THREADS: [usize; 3] = [1, 4, 8];

fn plan_batch(ds: &Dataset, batch: &AggBatch) -> ViewPlan {
    let cat = ds.db.catalog();
    let tree = JoinTree::build(&cat, &ds.relation_names()).expect("join tree");
    ViewPlan::plan(batch, &tree, &cat).expect("view plan")
}

/// Retailer has 35 features; a 4-feature slice keeps the boxed executors
/// fast in debug builds while exercising all five relations.
fn covar_features(ds: &Dataset) -> Vec<&str> {
    let mut f = ds.feature_refs();
    f.truncate(4);
    f
}

/// For every layout and thread count: executing `n` times against one
/// cached `Prepared` must equal `n` fresh prepare+execute runs, bit for
/// bit and with no drift between repetitions.
fn check_reuse_equals_fresh(ds: &Dataset, n: usize) {
    let features = covar_features(ds);
    let batch = covar_batch(&features, &ds.label);
    let plan = plan_batch(ds, &batch);
    for &layout in Layout::all() {
        let cached = prepare(layout, &plan, &ds.db);
        for &threads in &THREADS {
            let cfg = ExecConfig::with_threads(threads);
            let mut reused = Vec::with_capacity(n);
            let mut fresh = Vec::with_capacity(n);
            for _ in 0..n {
                reused.push(execute_with(layout, &plan, &ds.db, &cached, &cfg));
                let p = prepare(layout, &plan, &ds.db);
                fresh.push(execute_with(layout, &plan, &ds.db, &p, &cfg));
            }
            for (i, (r, f)) in reused.iter().zip(&fresh).enumerate() {
                assert_eq!(
                    r, f,
                    "{} {layout} t{threads}: reuse #{i} != fresh #{i}",
                    ds.name
                );
            }
            for (i, r) in reused.iter().enumerate() {
                assert_eq!(
                    r, &reused[0],
                    "{} {layout} t{threads}: repetition #{i} drifted",
                    ds.name
                );
            }
        }
    }
}

#[test]
fn favorita_reuse_is_bit_identical_to_fresh_every_layout_every_parallelism() {
    check_reuse_equals_fresh(&favorita(3_000, 42), 3);
}

#[test]
fn retailer_reuse_is_bit_identical_to_fresh_every_layout_every_parallelism() {
    check_reuse_equals_fresh(&retailer(2_000, 43), 3);
}

fn assert_model_close(tag: &str, got: &LogisticModel, want: &LogisticModel) {
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()));
    assert!(
        close(got.intercept, want.intercept),
        "{tag}: intercept {} vs {}",
        got.intercept,
        want.intercept
    );
    for ((a, b), f) in got.weights.iter().zip(&want.weights).zip(&got.features) {
        assert!(close(*a, *b), "{tag} weight {f}: {a} vs {b}");
    }
}

/// Logistic training over one cached preparation (the trainer prepares in
/// `new`, never in `fit`) must match the materialized reference to ≤1e-6
/// at all 8 layouts, and refitting over the same cached state must be bit
/// -identical to the first fit.
#[test]
fn logreg_cached_prep_matches_materialized_at_every_layout() {
    for ds in [
        favorita(2_000, 42).binarize_label(),
        retailer(1_500, 43).binarize_label(),
    ] {
        let features: Vec<&str> = ds.feature_refs().into_iter().take(4).collect();
        let m = ds.db.materialize();
        let reference = logreg::fit_materialized(&m, &features, &ds.label, 0.5, 40);
        for &layout in Layout::all() {
            let cfg = ExecConfig::with_threads(4);
            let mut trainer = FactorizedTrainer::new(&ds.db, &features, &ds.label, layout, &cfg);
            let got = trainer.fit(0.5, 40);
            assert_model_close(&format!("{} {layout}", ds.name), &got, &reference);
            let refit = trainer.fit(0.5, 40);
            assert_eq!(got, refit, "{} {layout}: refit drifted", ds.name);
        }
    }
}

/// Linear training through cached covar preparation must match the
/// materialized-moments path to ≤1e-6 at all 8 layouts.
#[test]
fn linreg_cached_prep_matches_materialized_at_every_layout() {
    for ds in [favorita(2_000, 7), retailer(1_500, 9)] {
        let features = covar_features(&ds);
        let m = ds.db.materialize();
        let reference = linreg::fit_bgd(
            &linreg::moments_from_matrix(&m, &features, &ds.label),
            0.5,
            40,
        );
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()));
        for &layout in Layout::all() {
            let cfg = ExecConfig::with_threads(4);
            let mp = linreg::prepare_moments(&ds.db, &features, &ds.label, layout);
            // Two passes over the cached prep: identical moments, and the
            // model they train matches the materialized reference.
            let moments = linreg::moments_factorized_prepared(&ds.db, &mp, &cfg);
            assert_eq!(
                moments,
                linreg::moments_factorized_prepared(&ds.db, &mp, &cfg),
                "{} {layout}: cached moments drifted",
                ds.name
            );
            let got = linreg::fit_bgd(&moments, 0.5, 40);
            assert!(
                close(got.intercept, reference.intercept),
                "{} {layout}: intercept {} vs {}",
                ds.name,
                got.intercept,
                reference.intercept
            );
            for ((a, b), f) in got.weights.iter().zip(&reference.weights).zip(&features) {
                assert!(close(*a, *b), "{} {layout} weight {f}: {a} vs {b}", ds.name);
            }
        }
    }
}

/// The compiled pipeline's prepared batch: building once and running the
/// batch repeatedly equals the one-shot path at every layout.
#[test]
fn compiled_prepared_batch_reuse_matches_one_shot() {
    let ds = favorita(1_500, 5);
    let program = ifaq_transform::highlevel::linear_regression_program(
        &ds.feature_refs()[..2],
        &ds.label,
        ifaq_ir::Expr::var("Q"),
        1e-6,
        5,
    );
    let opts = CompileOptions::for_star_db(&ds.db);
    let catalog = ds.db.catalog().with_var_size("Q", ds.db.fact_rows() as u64);
    let compiled = Pipeline::new(catalog).compile(&program, &opts).unwrap();
    for &layout in Layout::all() {
        let prepared = compiled.prepare(&ds.db, layout).unwrap();
        let cfg = ExecConfig::with_threads(4);
        let one_shot = compiled.run_batch_with(&ds.db, layout, &cfg).unwrap();
        for _ in 0..3 {
            assert_eq!(
                compiled.run_batch_prepared(&ds.db, &prepared, &cfg),
                one_shot,
                "{layout}: prepared batch diverged from one-shot"
            );
        }
    }
}

/// Using a `Prepared` built for layout A under layout B must fail fast
/// with a message naming both layouts (the staleness guard that replaced
/// the old bare `expect("prepare(Trie)")`s).
#[test]
fn stale_prepared_fails_with_both_layout_names() {
    let ds = favorita(500, 3);
    let features = covar_features(&ds);
    let batch = covar_batch(&features, &ds.label);
    let plan = plan_batch(&ds, &batch);
    for (built, used) in [
        (Layout::Trie, Layout::MergedHash),
        (Layout::SortedTrie, Layout::Trie),
        (Layout::Materialized, Layout::Array),
    ] {
        let prep = prepare(built, &plan, &ds.db);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_with(used, &plan, &ds.db, &prep, &ExecConfig::serial())
        }))
        .expect_err("mismatched layout must fail");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        // Anchor on the parenthesized Debug forms: `Trie` is a substring
        // of `SortedTrie`, so bare contains checks would be vacuous for
        // that pair.
        assert!(
            msg.contains(&format!("({built:?})")) && msg.contains(&format!("({used:?})")),
            "message must name `{built:?}` and `{used:?}`: {msg}"
        );
    }
}
