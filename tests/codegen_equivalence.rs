//! The compiled-backend differential gate: the C++ programs emitted by
//! `ifaq_codegen` must, when compiled by a host compiler and run on
//! *exported real data*, reproduce the native engine's aggregate batches
//! and fitted θ within 1e-6 (relative) — on both dataset shapes, for both
//! the linear-regression and logistic workloads.
//!
//! The engine side of every comparison goes through
//! `Compiled::prepare` / `execute_prepared` — the same prepared-state
//! path the rest of the tree uses — so this gate pins the *entire* §4.4
//! story: plan → emit → g++ → run-on-exported-data ≡ plan → prepare →
//! native scan → interpret residual.
//!
//! Without a host C++ compiler each test skips with an explanatory
//! message (the CI `codegen-e2e` job exercises the compiler-present path
//! on every push).

use ifaq::{CompileOptions, Pipeline};
use ifaq_codegen::cpp::{emit_program, Workload};
use ifaq_codegen::harness::{self, Cxx, RunResult};
use ifaq_datagen::{favorita, retailer, Dataset};
use ifaq_engine::{stable_sigmoid, ExecConfig, Layout, StarDb};
use ifaq_ir::{Expr, Program, Sym};
use ifaq_ml::logreg;
use ifaq_storage::{ColRelation, Column, Value};
use ifaq_transform::highlevel::linear_regression_program;
use std::path::PathBuf;

const SKIP: &str = "no host C++ compiler (g++/clang++/c++, or set IFAQ_CXX) found; \
                    skipping the codegen equivalence gate — install g++ to run it";

/// Relative 1e-6 agreement, the gate's acceptance bound.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()))
}

fn dirs(tag: &str) -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!("ifaq_cge_{}_{tag}", std::process::id()));
    (base.join("work"), base.join("data"))
}

fn cleanup(tag: &str) {
    let base = std::env::temp_dir().join(format!("ifaq_cge_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(base);
}

/// Exports `db`, compiles `program`, runs it, and hands back the parsed
/// result. Panics with the captured compiler/runtime diagnostics on any
/// failure — a broken emitter must fail loudly here.
fn run_generated(
    db: &StarDb,
    program: &ifaq_codegen::CppProgram,
    cxx: &Cxx,
    tag: &str,
) -> RunResult {
    let (work, data) = dirs(tag);
    db.export_dir(&data).expect("export star");
    let bin = harness::compile(program, &work, cxx).unwrap_or_else(|e| panic!("{tag}: {e}"));
    harness::run(&bin, &data).unwrap_or_else(|e| panic!("{tag}: {e}"))
}

fn assert_aggs_match(run: &RunResult, engine: &[f64], tag: &str) {
    assert_eq!(
        run.aggregates.len(),
        engine.len(),
        "{tag}: aggregate count mismatch"
    );
    for (i, ((name, got), want)) in run.aggregates.iter().zip(engine).enumerate() {
        assert!(
            close(*got, *want),
            "{tag}: aggregate {i} ({name}): generated {got} vs engine {want}"
        );
    }
}

fn theta_field(theta: &Value, feature: &str) -> f64 {
    match theta {
        Value::Record(fs) => fs
            .iter()
            .find(|(n, _)| n.as_str() == feature)
            .unwrap_or_else(|| panic!("engine θ has no field `{feature}`"))
            .1
            .as_f64()
            .expect("numeric θ entry"),
        other => panic!("expected θ record, got {other}"),
    }
}

/// Linear regression: compile the §3 D-IFAQ program through the full
/// pipeline, run it natively over prepared state, and hold the generated
/// C++ (same plan, same batch, same residual-loop semantics) to it.
fn linreg_gate(ds: &Dataset, features: &[&str], alpha: f64, iters: usize, tag: &str) {
    let Some(cxx) = harness::find_cxx() else {
        eprintln!("{SKIP}");
        return;
    };
    let db = &ds.db;
    let program =
        linear_regression_program(features, &ds.label, Expr::var("Q"), alpha, iters as i64);
    let catalog = db.catalog().with_var_size("Q", db.fact_rows() as u64);
    let compiled = Pipeline::new(catalog)
        .compile(&program, &CompileOptions::for_star_db(db))
        .expect("pipeline compile");
    let cfg = ExecConfig::global();
    let prepared = compiled.prepare(db, Layout::MergedHash).expect("prepare");
    let engine_aggs = compiled.run_batch_prepared(db, &prepared, cfg);
    let engine_theta = compiled
        .execute_prepared(db, &prepared, cfg)
        .expect("engine execute");
    let plan = prepared.plan().expect("nonempty linreg batch");
    let cpp = emit_program(
        plan,
        &compiled.batch,
        &Workload::Linreg {
            features: features.iter().map(|s| s.to_string()).collect(),
            label: ds.label.clone(),
            alpha,
            iterations: iters,
        },
        &db.catalog(),
    );
    let run = run_generated(db, &cpp, &cxx, tag);
    assert_eq!(run.rows as usize, db.fact_rows(), "{tag}: row count");
    assert_aggs_match(&run, &engine_aggs, tag);
    assert_eq!(run.theta.len(), features.len(), "{tag}: θ width");
    for (f, got) in &run.theta {
        let want = theta_field(&engine_theta, f);
        assert!(got.is_finite(), "{tag}: θ[{f}] not finite");
        assert!(
            close(*got, want),
            "{tag}: θ[{f}]: generated {got} vs engine {want}"
        );
    }
    // The fit did move: an all-zero θ would match a broken loop trivially.
    assert!(
        run.theta.iter().any(|(_, v)| v.abs() > 0.0),
        "{tag}: θ never moved"
    );
    cleanup(tag);
}

/// Clones a star with an extra all-zero `__sigma` fact column.
fn with_sigma(db: &StarDb) -> StarDb {
    let mut attrs = db.fact.attrs.clone();
    attrs.push(Sym::new(logreg::SIGMA_COL));
    let mut columns = db.fact.columns.clone();
    columns.push(Column::F64(vec![0.0; db.fact.len()]));
    StarDb::new(
        ColRelation::new(db.fact.name.clone(), attrs, columns),
        db.dims.clone(),
    )
}

/// The logistic gradient program: a record of `Σ Q(x)·x.σ·x.f` (the
/// θ-dependent side, re-run per iteration over the rewritten σ column)
/// and `Σ Q(x)·x.label·x.f` (the hoisted invariant side) per feature.
fn logistic_gradient_program(features: &[&str], label: &str) -> Program {
    let q = Expr::var("Q");
    let sum2 = |a: &str, b: &str| {
        Expr::sum(
            "x",
            Expr::dom(q.clone()),
            Expr::mul(
                Expr::mul(
                    Expr::apply(q.clone(), Expr::var("x")),
                    Expr::get(Expr::var("x"), a),
                ),
                Expr::get(Expr::var("x"), b),
            ),
        )
    };
    let mut fields: Vec<(Sym, Expr)> = Vec::new();
    for f in features {
        fields.push((Sym::new(format!("g_{f}")), sum2(logreg::SIGMA_COL, f)));
    }
    for f in features {
        fields.push((Sym::new(format!("v_{f}")), sum2(label, f)));
    }
    Program::expression(Expr::Record(fields))
}

fn record_field(v: &Value, name: &str) -> f64 {
    match v {
        Value::Record(fs) => fs
            .iter()
            .find(|(n, _)| n.as_str() == name)
            .unwrap_or_else(|| panic!("record has no field `{name}`"))
            .1
            .as_f64()
            .expect("numeric field"),
        other => panic!("expected record, got {other}"),
    }
}

/// Logistic regression: the engine side runs the raw-space
/// `logistic_regression_program` semantics factorized — per iteration a
/// sharded score pass rewrites σ, then **one `Compiled::prepare`-ed
/// gradient batch executes via `execute_prepared`** (the PR-4 contract:
/// fact-value rewrites keep prepared state valid). The generated C++
/// implements the identical loop natively and must match θ and the final
/// iteration's aggregates.
fn logistic_gate(ds: &Dataset, features: &[&str], alpha: f64, iters: usize, tag: &str) {
    let Some(cxx) = harness::find_cxx() else {
        eprintln!("{SKIP}");
        return;
    };
    assert!(iters >= 1);
    let ds = ds.binarize_label();
    let mut aug = with_sigma(&ds.db);
    let program = logistic_gradient_program(features, &ds.label);
    let catalog = aug.catalog().with_var_size("Q", aug.fact_rows() as u64);
    let compiled = Pipeline::new(catalog)
        .compile(&program, &CompileOptions::for_star_db(&aug))
        .expect("pipeline compile");
    assert_eq!(
        compiled.batch.len(),
        2 * features.len(),
        "gradient + invariant aggregates"
    );
    let cfg = ExecConfig::global();
    let prepared = compiled.prepare(&aug, Layout::MergedHash).expect("prepare");
    let score_prep = logreg::prepare_scores(&aug, features);
    let mut theta = vec![0.0; features.len()];
    for _ in 0..iters {
        let scores = logreg::fact_scores_prepared(&aug, features, &theta, 0.0, &score_prep, cfg);
        *aug.fact.columns.last_mut().expect("σ column") =
            Column::F64(scores.into_iter().map(stable_sigmoid).collect());
        let grad = compiled
            .execute_prepared(&aug, &prepared, cfg)
            .expect("engine gradient record");
        for (j, f) in features.iter().enumerate() {
            theta[j] -= alpha
                * (record_field(&grad, &format!("g_{f}")) - record_field(&grad, &format!("v_{f}")));
        }
    }
    // Aggregates at the final σ state, for the batch comparison.
    let engine_aggs = compiled.run_batch_prepared(&aug, &prepared, cfg);

    let plan = prepared.plan().expect("nonempty logistic batch");
    let cpp = emit_program(
        plan,
        &compiled.batch,
        &Workload::Logistic {
            features: features.iter().map(|s| s.to_string()).collect(),
            label: ds.label.clone(),
            sigma: logreg::SIGMA_COL.to_string(),
            alpha,
            iterations: iters,
        },
        &aug.catalog(),
    );
    // The generated program computes σ itself: export the *un-augmented*
    // database shape, minus nothing — the σ column must not be in the
    // files (the emitter allocates it), so export the original star.
    let run = run_generated(&ds.db, &cpp, &cxx, tag);
    assert_eq!(run.rows as usize, ds.db.fact_rows(), "{tag}: row count");
    assert_aggs_match(&run, &engine_aggs, tag);
    assert_eq!(run.theta.len(), features.len(), "{tag}: θ width");
    for ((f, got), want) in run.theta.iter().zip(&theta) {
        assert!(got.is_finite(), "{tag}: θ[{f}] not finite");
        assert!(
            close(*got, *want),
            "{tag}: θ[{f}]: generated {got} vs engine {want}"
        );
    }
    assert!(
        run.theta.iter().any(|(_, v)| v.abs() > 0.0),
        "{tag}: θ never moved"
    );
    cleanup(tag);
}

// Retailer features deliberately span every dimension (Location, Census,
// Item, Weather); Favorita's include the fact-owned `onpromotion` plus
// all four dimensions — together the two shapes cover fact-owned and
// dim-owned score/aggregate routing.
const RETAILER_FEATURES: [&str; 4] = ["l1", "c1", "i1", "w1"];

#[test]
fn generated_linreg_matches_engine_on_favorita() {
    let ds = favorita(2_000, 71);
    let features = ds.feature_refs();
    linreg_gate(&ds, &features, 1e-9, 12, "lin_fav");
}

#[test]
fn generated_linreg_matches_engine_on_retailer() {
    let ds = retailer(2_000, 72);
    linreg_gate(&ds, &RETAILER_FEATURES, 1e-8, 12, "lin_ret");
}

#[test]
fn generated_logistic_matches_engine_on_favorita() {
    let ds = favorita(2_000, 73);
    let features = ds.feature_refs();
    logistic_gate(&ds, &features, 1e-6, 8, "log_fav");
}

#[test]
fn generated_logistic_matches_engine_on_retailer() {
    let ds = retailer(2_000, 74);
    logistic_gate(&ds, &RETAILER_FEATURES, 1e-5, 8, "log_ret");
}

/// The skip path itself must stay honest: an absent compiler reports
/// `None` (the gate then skips with [`SKIP`]) rather than erroring.
#[test]
fn compilerless_hosts_skip_cleanly() {
    assert_eq!(
        harness::find_cxx_among(&["/definitely/not/a/compiler".to_string()]),
        None,
        "a bogus compiler candidate must not be 'found'"
    );
}
