//! Concurrency test for the resident serving engine: N reader threads
//! hammer `snapshot` / `predict` / `theta` / aggregate reads while one
//! writer appends delta batches and refits. The torn-read detector is
//! exact arithmetic: every applied batch inserts `BATCH` known-joinable
//! rows, so the joined-row count aggregate at generation `g` must equal
//! `base + g·BATCH` — as an integer-valued f64, exactly. A snapshot
//! whose totals and generation were read across a writer's commit would
//! violate that equality; a single consistent lock acquisition cannot.
//!
//! CI runs this suite under `IFAQ_THREADS=4`, so the engine's internal
//! aggregate scans shard while the outer threads contend for the lock.

use ifaq_datagen::favorita;
use ifaq_engine::Layout;
use ifaq_serve::{DeltaBatch, ServeConfig, ServeEngine};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

/// Rows per writer batch.
const BATCH: usize = 10;
/// Batches the writer applies.
const WRITES: usize = 25;
/// Concurrent reader threads.
const READERS: usize = 4;

#[test]
fn readers_never_observe_torn_state_while_writer_appends() {
    let ds = favorita(800, 77);
    let features: Vec<&str> = ds.feature_refs().into_iter().take(4).collect();
    let engine = Arc::new(ServeEngine::new(
        ds.train(),
        &features,
        &ds.label,
        ServeConfig::new(Layout::MergedHash),
    ));

    // The insert template: a stored fact row, verified to join into
    // every dimension so each insert raises the joined count by exactly
    // one (a dangling template would make the expected-count arithmetic
    // silently vacuous).
    let db = engine.db_snapshot();
    let template: Vec<f64> = db.fact.columns.iter().map(|c| c.get_f64(3)).collect();
    for dim in &db.dims {
        let key_col = db.fact.attr_index(dim.key.as_str()).unwrap();
        let key = template[key_col] as i64;
        assert!(
            dim.key_index().contains_key(&key),
            "template row dangles on {}",
            dim.rel.name
        );
    }
    let base_count = engine.aggregate("count").unwrap();
    let base_gen = engine.generation();
    let ci = engine.batch().index_of("count").unwrap();
    let x_probe: Vec<f64> = vec![1.0; features.len()];

    let done = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for reader in 0..READERS {
        let engine = Arc::clone(&engine);
        let done = Arc::clone(&done);
        let x_probe = x_probe.clone();
        handles.push(thread::spawn(move || {
            let mut seen = 0u64;
            let mut last_gen = 0u64;
            while !done.load(Ordering::Acquire) {
                // The invariant: count and generation from ONE snapshot
                // must satisfy the writer's arithmetic exactly.
                let snap = engine.snapshot();
                let expect = base_count + ((snap.generation - base_gen) as f64) * BATCH as f64;
                assert_eq!(
                    snap.totals[ci], expect,
                    "reader {reader}: torn snapshot at generation {}",
                    snap.generation
                );
                assert!(snap.fact_rows > 0);
                // Generations must be monotone from any single reader.
                assert!(
                    snap.generation >= last_gen,
                    "reader {reader}: generation went backwards"
                );
                last_gen = snap.generation;
                // Model reads stay finite mid-write.
                assert!(engine.predict(&x_probe).is_finite());
                assert!(engine.theta().intercept.is_finite());
                seen += 1;
            }
            seen
        }));
    }

    // The writer: append batches, refit every fifth one.
    for g in 0..WRITES {
        let rows = std::iter::repeat_with(|| template.clone()).take(BATCH);
        let report = engine.apply_delta(&DeltaBatch::from_inserts(rows)).unwrap();
        assert_eq!(report.inserted, BATCH);
        assert_eq!(report.generation, base_gen + g as u64 + 1);
        if g % 5 == 4 {
            engine.refit();
        }
    }
    done.store(true, Ordering::Release);

    let mut total_reads = 0;
    for h in handles {
        total_reads += h.join().expect("reader panicked");
    }
    assert!(total_reads > 0, "readers never ran");

    // Final state: every batch landed, and the arithmetic closes.
    assert_eq!(engine.generation(), base_gen + WRITES as u64);
    assert_eq!(
        engine.aggregate("count").unwrap(),
        base_count + (WRITES * BATCH) as f64
    );
    assert_eq!(engine.fact_rows(), db.fact.len() + WRITES * BATCH);
}
