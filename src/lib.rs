//! Workspace umbrella for the IFAQ reproduction.
//!
//! This crate only exists so that the repository-level `examples/` and
//! `tests/` directories can exercise the public API of every workspace
//! member. See the [`ifaq`] crate for the actual library entry point.

pub use ifaq as pipeline;
