//! CART regression trees over the Retailer-shaped dataset, learned
//! *without materializing the join*: each tree node evaluates one batch of
//! filtered variance aggregates directly over the input relations (§3).
//!
//! ```sh
//! cargo run --example decision_tree --release
//! ```

use ifaq_datagen::retailer;
use ifaq_ml::metrics::tree_rmse;
use ifaq_ml::tree::{fit_factorized, fit_materialized, thresholds_from_db, Node, TreeConfig};
use std::time::Instant;

fn print_tree(node: &Node, indent: usize) {
    let pad = "  ".repeat(indent);
    match node {
        Node::Leaf { prediction, count } => {
            println!("{pad}predict {prediction:.3}  ({count} rows)");
        }
        Node::Split {
            attr,
            threshold,
            left,
            right,
        } => {
            println!("{pad}if {attr} <= {threshold:.3}:");
            print_tree(left, indent + 1);
            println!("{pad}else:");
            print_tree(right, indent + 1);
        }
    }
}

fn main() {
    let ds = retailer(60_000, 9);
    let train = ds.train();
    let test = ds.test_matrix();
    // A subset of the 34 features keeps the demo output readable.
    let features: Vec<&str> = ds.feature_refs().into_iter().take(8).collect();
    let config = TreeConfig {
        max_depth: 4,
        min_samples: 10.0,
        thresholds_per_feature: 4,
    };
    println!(
        "retailer-shaped dataset: {} training rows; depth-{} tree over {:?}",
        train.fact_rows(),
        config.max_depth,
        features
    );

    // Factorized: per-node aggregate batches over the star database.
    let t0 = Instant::now();
    let tree = fit_factorized(&train, &features, &ds.label, &config);
    let t_fact = t0.elapsed();

    // Conventional: materialize the join, then the same CART recursion.
    let t0 = Instant::now();
    let matrix = train.materialize();
    let t_mat = t0.elapsed();
    let thresholds = thresholds_from_db(&train, &features, config.thresholds_per_feature);
    let t0 = Instant::now();
    let tree_mat = fit_materialized(&matrix, &features, &ds.label, &thresholds, &config);
    let t_learn = t0.elapsed();

    assert_eq!(tree, tree_mat, "both paths learn the same tree");
    println!(
        "\nfactorized fit:      {:>7.3}s (no join materialization)",
        t_fact.as_secs_f64()
    );
    println!(
        "materialized fit:    {:>7.3}s join + {:>7.3}s learn",
        t_mat.as_secs_f64(),
        t_learn.as_secs_f64()
    );
    println!(
        "\ntree: {} nodes, depth {}, held-out RMSE {:.4}",
        tree.node_count(),
        tree.depth(),
        tree_rmse(&tree, &test, &ds.label)
    );
    println!("\nlearned tree:");
    print_tree(&tree.root, 1);
}
