//! Binary classification on the Favorita shape: predict *above-median
//! sales days* (`unit_sales_hi`, a churn/promotion-style 0/1 target
//! derived by `Dataset::binarize_label`) with logistic regression.
//!
//! Unlike linear regression, the log-loss gradient is nonlinear in θ, so
//! nothing like the covar matrix can be hoisted: every iteration needs a
//! data pass. The factorized path re-runs that pass over the *unjoined*
//! star schema — a per-dimension weighted score view plus a small
//! aggregate batch — while the conventional pipelines must materialize
//! the join first and then re-scan the wide matrix per iteration.
//!
//! ```sh
//! cargo run --example churn_or_promo --release
//! ```

use ifaq_datagen::favorita;
use ifaq_engine::Layout;
use ifaq_ml::baseline::{scikit_like_logreg, tf_like_logreg, MemoryBudget};
use ifaq_ml::logreg;
use ifaq_ml::metrics::{logreg_accuracy, logreg_auc};
use std::time::Instant;

fn main() {
    let (learning_rate, iters) = (0.5, 120);
    let ds = favorita(20_000, 7).binarize_label();
    let train = ds.train();
    let test = ds.test_matrix();
    let features = ds.feature_refs();
    println!(
        "favorita-shaped dataset, binary target `{}`: {} training rows, {} test rows",
        ds.label,
        train.fact_rows(),
        test.rows
    );

    // IFAQ: factorized per-iteration gradient passes; no join materialization.
    let t0 = Instant::now();
    let ifaq_model = logreg::fit_factorized(
        &train,
        &features,
        &ds.label,
        Layout::MergedHash,
        learning_rate,
        iters,
    );
    let t_ifaq = t0.elapsed();

    // Conventional pipeline: materialize, then learn over the dense matrix.
    let t0 = Instant::now();
    let matrix = train.materialize();
    let t_mat = t0.elapsed();
    let t0 = Instant::now();
    let sk_model = scikit_like_logreg(
        &matrix,
        &features,
        &ds.label,
        learning_rate,
        iters,
        MemoryBudget::unlimited(),
    )
    .expect("within budget");
    let t_sk = t0.elapsed();
    let t0 = Instant::now();
    let tf_model = tf_like_logreg(&matrix, &features, &ds.label, 0.1, 100_000);
    let t_tf = t0.elapsed();

    println!("\ntraining time ({iters} iterations):");
    println!(
        "  ifaq (fused, factorized):        {:>8.3}s",
        t_ifaq.as_secs_f64()
    );
    println!(
        "  materialize join:                {:>8.3}s",
        t_mat.as_secs_f64()
    );
    println!(
        "  scikit-shaped learn (after mat): {:>8.3}s",
        t_sk.as_secs_f64()
    );
    println!(
        "  tf-shaped 1 epoch (after mat):   {:>8.3}s",
        t_tf.as_secs_f64()
    );

    println!("\nheld-out classification quality (last dates):");
    for (name, model) in [
        ("ifaq factorized", &ifaq_model),
        ("scikit-shaped", &sk_model),
        ("tf 1 epoch", &tf_model),
    ] {
        println!(
            "  {name:<16} log-loss {:.4}  accuracy {:.3}  AUC {:.3}",
            model.mean_log_loss(&test, &ds.label),
            logreg_accuracy(model, &test, &ds.label),
            logreg_auc(model, &test, &ds.label)
        );
    }

    println!(
        "\ntrained logistic model (ifaq): intercept {:.4}",
        ifaq_model.intercept
    );
    for (f, w) in ifaq_model.features.iter().zip(&ifaq_model.weights) {
        println!("  {f:<14} {w:>10.5}");
    }
}
