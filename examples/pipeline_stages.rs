//! A guided tour of the compilation stages (Figure 3): prints the program
//! after every layer, the rule-firing trace, the join tree, the view plan,
//! the data-layout synthesis report, and the generated C++.
//!
//! ```sh
//! cargo run --example pipeline_stages --release
//! ```

use ifaq::{CompileOptions, Pipeline};
use ifaq_codegen::{emit_program, synthesize, Workload};
use ifaq_engine::star::running_example_star;
use ifaq_ir::pretty::pretty_indented;
use ifaq_ir::Expr;
use ifaq_query::{JoinTree, ViewPlan};
use ifaq_transform::highlevel::linear_regression_program;

fn banner(title: &str) {
    println!("\n{:=<72}", "");
    println!("== {title}");
    println!("{:=<72}", "");
}

fn main() {
    let db = running_example_star();
    let catalog = db.catalog().with_var_size("Q", db.fact_rows() as u64);
    let program =
        linear_regression_program(&["city", "price"], "units", Expr::var("Q"), 0.000001, 50);

    banner("stage 0: input D-IFAQ program (§3)");
    println!("{program}");

    let options = CompileOptions::for_star_db(&db);
    let compiled = Pipeline::new(catalog.clone())
        .compile(&program, &options)
        .expect("compile");

    banner("stage 1: after high-level optimizations (§4.1)");
    println!("rule firings:");
    for (rule, count) in compiled.stages.high_level_report.normalize.iter() {
        println!("  normalize/{rule}: {count}");
    }
    for (rule, count) in compiled.stages.high_level_report.schedule.iter() {
        println!("  schedule/{rule}: {count}");
    }
    for (rule, count) in compiled.stages.high_level_report.factorize.iter() {
        println!("  factorize/{rule}: {count}");
    }
    println!(
        "  memoized aggregates: {}",
        compiled.stages.high_level_report.memoized
    );
    println!(
        "  hoisted out of while loop: {}",
        compiled.stages.high_level_report.hoisted_out_of_loop
    );
    println!("\n{}", compiled.stages.high_level);

    banner("stage 2: after schema specialization (§4.2, S-IFAQ)");
    for (name, e) in &compiled.stages.specialized.lets {
        println!("let {name} =\n{}", pretty_indented(e));
    }
    println!(
        "step:\n{}",
        pretty_indented(&compiled.stages.specialized.step)
    );

    banner("stage 3: aggregate extraction (§4.3)");
    println!("batch:");
    for agg in &compiled.batch.aggs {
        println!("  {agg}");
    }
    println!("\nresidual program:\n{}", compiled.program);

    banner("stage 4: join tree and view plan (§4.3)");
    let tree = JoinTree::build(&catalog, &["S", "R", "I"]).expect("join tree");
    let plan = ViewPlan::plan(&compiled.batch, &tree, &catalog).expect("plan");
    println!("{plan}");

    banner("stage 5: data-layout synthesis (§4.4)");
    println!("{}", synthesize(&plan, &catalog));

    banner("stage 6: generated C++ (first 60 lines)");
    // Emit from the *extracted* batch and its plan, so the generated unit
    // computes exactly the aggregates the residual program consumes.
    let cpp = emit_program(
        &plan,
        &compiled.batch,
        &Workload::Linreg {
            features: vec!["city".into(), "price".into()],
            label: "units".into(),
            alpha: 0.000001,
            iterations: 50,
        },
        &catalog,
    );
    for line in cpp.source.lines().take(60) {
        println!("{line}");
    }
    println!("... ({} lines total)", cpp.source.lines().count());
}
