//! Retail forecasting on the Favorita-shaped dataset: train linear models
//! with the factorized IFAQ path and compare against the conventional
//! materialize-then-learn pipelines, including held-out RMSE — the §5
//! workload at laptop scale.
//!
//! ```sh
//! cargo run --example retail_forecast --release
//! ```

use ifaq_datagen::favorita;
use ifaq_engine::Layout;
use ifaq_ml::baseline::{scikit_like_linreg, tf_like_linreg, MemoryBudget};
use ifaq_ml::linreg;
use ifaq_ml::metrics::linreg_rmse;
use std::time::Instant;

fn main() {
    let ds = favorita(100_000, 7);
    let train = ds.train();
    let test = ds.test_matrix();
    let features = ds.feature_refs();
    println!(
        "favorita-shaped dataset: {} training rows, {} test rows, features {:?}",
        train.fact_rows(),
        test.rows,
        features
    );

    // IFAQ: factorized covar + BGD; the join never materializes.
    let t0 = Instant::now();
    let ifaq_model =
        linreg::fit_factorized(&train, &features, &ds.label, Layout::MergedHash, 0.5, 200);
    let t_ifaq = t0.elapsed();

    // Conventional pipeline: materialize, then learn.
    let t0 = Instant::now();
    let matrix = train.materialize();
    let t_mat = t0.elapsed();
    let t0 = Instant::now();
    let sk_model = scikit_like_linreg(&matrix, &features, &ds.label, MemoryBudget::unlimited())
        .expect("within budget");
    let t_sk = t0.elapsed();
    let t0 = Instant::now();
    let tf_model = tf_like_linreg(&matrix, &features, &ds.label, 0.05, 100_000);
    let t_tf = t0.elapsed();

    println!("\ntraining time:");
    println!(
        "  ifaq (fused, factorized):        {:>8.3}s",
        t_ifaq.as_secs_f64()
    );
    println!(
        "  materialize join:                {:>8.3}s",
        t_mat.as_secs_f64()
    );
    println!(
        "  scikit-shaped learn (after mat): {:>8.3}s",
        t_sk.as_secs_f64()
    );
    println!(
        "  tf-shaped 1 epoch (after mat):   {:>8.3}s",
        t_tf.as_secs_f64()
    );
    if t_ifaq < t_mat {
        println!("  => IFAQ finished before the baselines materialized the join.");
    }

    println!("\nheld-out RMSE (last dates):");
    println!(
        "  ifaq BGD:     {:.4}",
        linreg_rmse(&ifaq_model, &test, &ds.label)
    );
    println!(
        "  closed form:  {:.4}",
        linreg_rmse(&sk_model, &test, &ds.label)
    );
    println!(
        "  tf 1 epoch:   {:.4}",
        linreg_rmse(&tf_model, &test, &ds.label)
    );

    println!(
        "\nlearned model (ifaq): intercept {:.4}",
        ifaq_model.intercept
    );
    for (f, w) in ifaq_model.features.iter().zip(&ifaq_model.weights) {
        println!("  {f:<14} {w:>10.5}");
    }
}
