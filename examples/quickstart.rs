//! Quickstart: compile and run the paper's §3 linear-regression program
//! end to end on the running-example database.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use ifaq::{CompileOptions, Pipeline};
use ifaq_engine::star::running_example_star;
use ifaq_engine::Layout;
use ifaq_ir::Expr;
use ifaq_transform::highlevel::linear_regression_program;

fn main() {
    // The §3.1 database: Sales(item, store, units) ⋈ StoRes(store, city)
    // ⋈ Items(item, price).
    let db = running_example_star();
    println!(
        "database: {} fact rows, {} dimensions",
        db.fact_rows(),
        db.dims.len()
    );

    // The D-IFAQ program: batch gradient descent for a linear model over
    // features {city, price} with label units, 100 iterations.
    let program =
        linear_regression_program(&["city", "price"], "units", Expr::var("Q"), 0.000001, 100);
    println!("\n-- input D-IFAQ program --\n{program}\n");

    // Compile through every stage of Figure 3.
    let catalog = db.catalog().with_var_size("Q", db.fact_rows() as u64);
    let options = CompileOptions::for_star_db(&db);
    let compiled = Pipeline::new(catalog)
        .compile(&program, &options)
        .expect("compile");

    println!(
        "high-level optimizations: {} rule firings, {} aggregate(s) memoized, \
         {} binding(s) hoisted out of the loop",
        compiled.stages.high_level_report.total_firings(),
        compiled.stages.high_level_report.memoized,
        compiled.stages.high_level_report.hoisted_out_of_loop,
    );
    println!("\nextracted aggregate batch (computed once, without materializing Q):");
    for agg in &compiled.batch.aggs {
        println!("  {agg}");
    }
    println!(
        "\n-- residual program (no data scans in the loop) --\n{}",
        compiled.program
    );

    // Execute: the batch runs factorized over the star database; the
    // training loop then iterates over the moments alone.
    let theta = compiled.execute(&db, Layout::MergedHash).expect("execute");
    println!("\ntrained parameters: {theta}");
}
